"""PAM4 end to end through the facade.

The acceptance contract of the modulation refactor: ``run_batch`` over
a PAM4 stimulus reports per-sub-eye measurements (three sub-eyes),
Gray-coded DFE decisions recover the transmitted bits over a clean
channel, and a sweep with a structural ``modulation`` axis runs NRZ and
PAM4 points inside one ``SweepResult``.
"""

import numpy as np
import pytest

from repro import kernels
from repro.analysis import measure_eye_batch
from repro.baselines import DecisionFeedbackEqualizer
from repro.cdr import BangBangCdr, CdrConfig
from repro.link import (
    ChannelConfig,
    DfeConfig,
    LinkBatchResult,
    LinkSession,
    TxConfig,
)
from repro.signals import (
    Nrz,
    Pam4,
    RandomJitter,
    SymbolEncoder,
    WaveformBatch,
    add_awgn,
    bits_to_pam4,
)
from repro.sweep import ScenarioGrid, SweepAxis, modulation_axis

SYMBOL_RATE = 5e9
BACKENDS = kernels.available_backends()


def make_pam4_batch(n_scenarios=4, n_bits=480, samples_per_symbol=8,
                    noise=0.01):
    pam4 = Pam4()
    enc = SymbolEncoder(symbol_rate=SYMBOL_RATE, modulation=pam4,
                        samples_per_symbol=samples_per_symbol,
                        amplitude=0.4)
    rng = np.random.default_rng(17)
    bits = rng.integers(0, 2, n_bits)
    symbols = pam4.bits_to_symbols(bits)
    waves = []
    for seed in range(1, n_scenarios + 1):
        jitter = RandomJitter(2e-12, seed=seed)
        wave = enc.encode(symbols, edge_offsets=jitter.offsets(
            len(symbols), SYMBOL_RATE))
        waves.append(add_awgn(wave, rms_volts=noise, seed=seed))
    return WaveformBatch.stack(waves), bits, symbols


# ---------------------------------------------------------------------------
# Eyes: three sub-eyes per scenario.
# ---------------------------------------------------------------------------

def test_run_batch_reports_three_sub_eyes():
    batch, _, _ = make_pam4_batch()
    session = LinkSession([], bit_rate=SYMBOL_RATE, modulation=Pam4())
    result = session.run_batch(batch)
    assert result.modulation == Pam4()
    assert len(result.eyes) == batch.n_scenarios
    for eye in result.eyes:
        assert eye.n_levels == 4 and eye.n_eyes == 3
        assert len(eye.eye_heights) == 3
        assert len(eye.eye_widths_ui) == 3
        assert len(eye.q_factors) == 3
        assert all(h > 0 for h in eye.eye_heights)
        # The scalar fields report the worst sub-eye.
        assert eye.eye_height == min(eye.eye_heights)
        assert eye.eye_width_ui == min(eye.eye_widths_ui)
        assert eye.q_factor == min(eye.q_factors)
        assert eye.worst_eye == int(np.argmin(eye.eye_heights))
        # Four reconstructed levels, in order.
        assert len(eye.levels) == 4
        assert list(eye.levels) == sorted(eye.levels)


def test_measure_eye_batch_rows_match_serial_pam4():
    batch, _, _ = make_pam4_batch(n_scenarios=3)
    pam4 = Pam4()
    batched = measure_eye_batch(batch, SYMBOL_RATE, skip_ui=8,
                                modulation=pam4)
    from repro.analysis import EyeDiagram
    for i, measurement in enumerate(batched):
        serial = EyeDiagram(batch[i], SYMBOL_RATE, skip_ui=8,
                            modulation=pam4).measure()
        assert measurement.eye_heights == serial.eye_heights
        assert measurement.eye_widths_ui == serial.eye_widths_ui
        assert measurement.q_factors == serial.q_factors


# ---------------------------------------------------------------------------
# Decisions: Gray-coded recovery over a clean channel.
# ---------------------------------------------------------------------------

def test_dfe_recovers_bits_over_clean_channel():
    pam4 = Pam4()
    rng = np.random.default_rng(23)
    bits = rng.integers(0, 2, 800)
    wave = bits_to_pam4(bits, SYMBOL_RATE, amplitude=0.5,
                        samples_per_symbol=16)
    dfe = DecisionFeedbackEqualizer(taps=(1e-12,), bit_rate=SYMBOL_RATE,
                                    decision_amplitude=0.25,
                                    modulation=pam4)
    decisions, _ = dfe.equalize(wave)
    symbols = pam4.bits_to_symbols(bits)
    n = min(len(decisions), len(symbols))
    np.testing.assert_array_equal(decisions[:n], symbols[:n])
    np.testing.assert_array_equal(pam4.symbols_to_bits(decisions[:n]),
                                  bits[:2 * n])


@pytest.mark.parametrize("backend", BACKENDS)
def test_dfe_batch_matches_serial_pam4(backend):
    batch, _, _ = make_pam4_batch(n_scenarios=3)
    dfe = DecisionFeedbackEqualizer(taps=(0.05, 0.02),
                                    bit_rate=SYMBOL_RATE,
                                    decision_amplitude=0.2,
                                    modulation=Pam4())
    with kernels.use_backend(backend):
        decisions, corrected = dfe._equalize_batch(batch)
    assert decisions.max() == 3
    for i in range(batch.n_scenarios):
        serial_dec, serial_corr = dfe.equalize(batch[i])
        np.testing.assert_array_equal(decisions[i], serial_dec)
        np.testing.assert_array_equal(corrected[i], serial_corr)


@pytest.mark.parametrize("backend", BACKENDS)
def test_cdr_batch_matches_serial_pam4(backend):
    batch, _, _ = make_pam4_batch(n_scenarios=3)
    config = CdrConfig(bit_rate=SYMBOL_RATE, initial_phase_ui=0.2,
                       modulation=Pam4(), amplitude=0.4)
    cdr = BangBangCdr(config)
    with kernels.use_backend(backend):
        result = cdr._recover_batch(batch)
    assert result.decisions.max() == 3
    for i in range(batch.n_scenarios):
        serial = cdr.recover(batch[i])
        row = result.row(i)
        np.testing.assert_array_equal(row.decisions, serial.decisions)
        np.testing.assert_array_equal(row.phase_track_ui,
                                      serial.phase_track_ui)
        np.testing.assert_array_equal(row.votes, serial.votes)


def test_cdr_locks_on_pam4():
    batch, _, _ = make_pam4_batch(n_scenarios=2, n_bits=960)
    session = LinkSession([], bit_rate=SYMBOL_RATE, modulation=Pam4(),
                          cdr=True)
    assert session.cdr_config.modulation == Pam4()
    result = session.run_batch(batch)
    assert result.cdr.lock_yield() == 1.0


# ---------------------------------------------------------------------------
# The facade: threading, chunking, concatenation.
# ---------------------------------------------------------------------------

def test_session_threads_modulation_from_tx_config():
    session = LinkSession.from_configs(
        tx=TxConfig(modulation=Pam4()), channel=ChannelConfig(0.0),
        bit_rate=SYMBOL_RATE, cdr=True,
        dfe=DfeConfig(taps=(0.05,), decision_amplitude=0.2))
    assert session.modulation == Pam4()
    assert session.cdr_config.modulation == Pam4()
    assert session.dfe.modulation == Pam4()
    batch, _, _ = make_pam4_batch(n_scenarios=2)
    result = session.run_batch(batch)
    assert result.modulation == Pam4()
    assert result.row(0).modulation == Pam4()
    assert result.row(0).eye.n_eyes == 3
    assert result.dfe_decisions.max() == 3


def test_chunked_run_batch_row_exact_pam4():
    batch, _, _ = make_pam4_batch(n_scenarios=5)
    session = LinkSession(
        [], bit_rate=SYMBOL_RATE, modulation=Pam4(), cdr=True,
        dfe=DfeConfig(taps=(0.05,), decision_amplitude=0.2))
    mono = session.run_batch(batch)
    chunked = session.run_batch(batch, chunk_rows=2)
    assert chunked.modulation == Pam4()
    np.testing.assert_array_equal(mono.dfe_decisions,
                                  chunked.dfe_decisions)
    np.testing.assert_array_equal(mono.dfe_corrected,
                                  chunked.dfe_corrected)
    np.testing.assert_array_equal(mono.cdr.decisions,
                                  chunked.cdr.decisions)
    for a, b in zip(mono.eyes, chunked.eyes):
        assert a.eye_heights == b.eye_heights


def test_concatenate_preserves_modulation():
    batch, _, _ = make_pam4_batch(n_scenarios=2)
    session = LinkSession([], bit_rate=SYMBOL_RATE, modulation=Pam4())
    part = session.run_batch(batch)
    whole = LinkBatchResult.concatenate([part, part])
    assert whole.modulation == Pam4()
    assert whole.n_scenarios == 4


# ---------------------------------------------------------------------------
# Sweeps: NRZ and PAM4 in one grid.
# ---------------------------------------------------------------------------

def test_mixed_modulation_sweep_single_result():
    session = LinkSession.from_configs(
        tx=TxConfig(), channel=ChannelConfig(0.1), bit_rate=SYMBOL_RATE,
        dfe=DfeConfig(taps=(0.05,), decision_amplitude=0.2))
    grid = ScenarioGrid([
        modulation_axis([Nrz(), Pam4()]),
        SweepAxis("seed", (0, 1, 2)),
    ])

    def stimulus(params):
        rng = np.random.default_rng(params["seed"])
        bits = rng.integers(0, 2, 400)
        enc = SymbolEncoder(symbol_rate=SYMBOL_RATE,
                            modulation=params["modulation"],
                            amplitude=0.4, samples_per_symbol=8)
        return enc.encode_bits(bits)

    result = session.sweep(grid, stimulus)
    assert len(result.results) == 6
    for params, row in zip(grid.points(), result.results):
        expected = params["modulation"]
        assert row.modulation == expected
        assert row.eye.n_levels == expected.n_levels
        assert row.eye.n_eyes == expected.n_eyes
        # Every point measured with its own alphabet: all eyes open.
        assert row.eye.eye_height > 0
        assert int(row.dfe_decisions.max()) == expected.n_levels - 1


def test_batchable_modulation_axis_rejected():
    session = LinkSession([], bit_rate=SYMBOL_RATE)
    grid = ScenarioGrid([SweepAxis("modulation", (Nrz(), Pam4()))])
    with pytest.raises(ValueError, match="structural"):
        session.sweep(grid, lambda params: None)


def test_modulation_axis_helper_is_structural():
    axis = modulation_axis([Nrz(), Pam4()])
    assert axis.name == "modulation"
    assert axis.structural
    assert axis.values == (Nrz(), Pam4())


def test_checkpointed_mixed_sweep_resumes(tmp_path):
    session = LinkSession.from_configs(
        tx=TxConfig(), channel=ChannelConfig(0.1), bit_rate=SYMBOL_RATE)
    grid = ScenarioGrid([
        modulation_axis([Nrz(), Pam4()]),
        SweepAxis("seed", (0, 1)),
    ])

    def stimulus(params):
        rng = np.random.default_rng(params["seed"])
        bits = rng.integers(0, 2, 400)
        enc = SymbolEncoder(symbol_rate=SYMBOL_RATE,
                            modulation=params["modulation"],
                            amplitude=0.4, samples_per_symbol=8)
        return enc.encode_bits(bits)

    first = session.sweep(grid, stimulus, checkpoint_dir=tmp_path)
    resumed = session.sweep(grid, stimulus, checkpoint_dir=tmp_path)
    for a, b in zip(first.results, resumed.results):
        assert a.eye.eye_heights == b.eye.eye_heights
        assert a.modulation == b.modulation
