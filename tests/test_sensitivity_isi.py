"""Sensitivity/dynamic-range sweeps and pulse-response ISI analysis."""

import numpy as np
import pytest

from repro.analysis import (
    SensitivityResult,
    eye_is_good,
    measure_dynamic_range,
    measure_sensitivity,
    measure_overload,
    pulse_response,
    worst_case_eye_opening,
)
from repro.analysis.eye import EyeDiagram
from repro.channel import BackplaneChannel
from repro.lti import GainBlock, LinearBlock, first_order_lowpass
from repro.signals import bits_to_nrz, prbs7


def test_sensitivity_of_ideal_amplifier():
    # A clean x100 amplifier with a 0.25 V limiting target: any input
    # above ~2.5/0.6 mV-ish passes the 60% criterion.
    rx = GainBlock(100.0)
    sensitivity = measure_sensitivity(rx.process, full_swing=0.25,
                                      n_bits=150)
    assert sensitivity < 3e-3


def test_sensitivity_result_dynamic_range():
    result = SensitivityResult(sensitivity_vpp=0.004, overload_vpp=1.8)
    assert result.dynamic_range_db == pytest.approx(53.1, abs=0.5)


def test_rx_sensitivity_near_paper_4mv(rx_interface):
    # The headline claim: ~4 mV sensitivity (we accept 1-8 mV — the
    # criterion details differ from the paper's unpublished ones).
    sensitivity = measure_sensitivity(
        rx_interface.process, full_swing=rx_interface.output_swing,
        n_bits=150,
    )
    assert 5e-4 < sensitivity < 8e-3


def test_rx_overload_at_least_1v8(rx_interface):
    overload = measure_overload(
        rx_interface.process, full_swing=rx_interface.output_swing,
        n_bits=150,
    )
    assert overload >= 1.7


def test_rx_dynamic_range_at_least_40db(rx_interface):
    result = measure_dynamic_range(
        rx_interface.process, full_swing=rx_interface.output_swing,
        n_bits=150,
    )
    assert result.dynamic_range_db >= 40.0


def test_sensitivity_with_noise_is_worse(rx_interface):
    quiet = measure_sensitivity(
        rx_interface.process, full_swing=rx_interface.output_swing,
        n_bits=150,
    )
    noisy = measure_sensitivity(
        rx_interface.process, full_swing=rx_interface.output_swing,
        n_bits=150, noise_rms=1e-3,
    )
    assert noisy >= quiet


def test_eye_is_good_criterion():
    wave = bits_to_nrz(prbs7(150), 10e9, amplitude=0.25, samples_per_bit=16)
    m = EyeDiagram.measure_waveform(wave, 10e9)
    assert eye_is_good(m, full_swing=0.25)
    assert not eye_is_good(m, full_swing=10.0)
    with pytest.raises(ValueError):
        eye_is_good(m, full_swing=0.0)


def test_sensitivity_raises_for_dead_receiver():
    dead = GainBlock(1e-6)
    with pytest.raises(ValueError):
        measure_sensitivity(dead.process, full_swing=0.25, n_bits=150)


# -- ISI / pulse response ------------------------------------------------------

def test_pulse_response_of_wideband_system_has_no_isi():
    system = GainBlock(1.0)
    pulse = pulse_response(system, 10e9, samples_per_bit=16)
    assert pulse.main_cursor == pytest.approx(1.0, rel=0.05)
    assert pulse.isi_sum() < 0.1
    assert pulse.worst_case_opening() > 0.9


def test_pulse_response_of_channel_shows_postcursor_isi():
    channel = BackplaneChannel(0.5)
    pulse = pulse_response(channel, 10e9, samples_per_bit=16)
    assert pulse.main_cursor < 0.7  # attenuated
    assert np.sum(np.abs(pulse.postcursors())) > 0.1  # dispersion tail
    assert pulse.worst_case_opening() < pulse.main_cursor


def test_worst_case_opening_degrades_with_length():
    short = worst_case_eye_opening(BackplaneChannel(0.2), 10e9,
                                   samples_per_bit=16)
    long = worst_case_eye_opening(BackplaneChannel(0.6), 10e9,
                                  samples_per_bit=16)
    assert long < short


def test_narrowband_filter_creates_isi():
    system = LinearBlock(first_order_lowpass(2e9))
    pulse = pulse_response(system, 10e9, samples_per_bit=16)
    assert pulse.isi_sum() > 0.3
    assert pulse.isi_ratio_db() < 10.0


def test_pulse_response_validation():
    with pytest.raises(ValueError):
        pulse_response(GainBlock(1.0), 10e9, n_lead_bits=1)
