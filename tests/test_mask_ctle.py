"""Eye-mask compliance and the generic CTLE baseline."""

import numpy as np
import pytest

from repro.analysis import EyeMask, check_mask
from repro.baselines import GenericCtle, ctle_matching_equalizer
from repro.channel import BackplaneChannel
from repro.core import CherryHooperEqualizer, build_input_interface
from repro.devices import nmos
from repro.signals import add_awgn, bits_to_nrz, prbs7

BIT_RATE = 10e9


def small_mask(height=0.05):
    return EyeMask(x1=0.25, x2=0.4, y1=height, y2=0.5)


# -- mask ----------------------------------------------------------------

def test_clean_eye_passes_small_mask():
    wave = bits_to_nrz(prbs7(220), BIT_RATE, amplitude=0.4,
                       samples_per_bit=16)
    result = check_mask(wave, BIT_RATE, small_mask())
    assert result.passes
    assert result.margin > 1.5


def test_closed_eye_fails_mask():
    wave = bits_to_nrz(prbs7(220), BIT_RATE, amplitude=0.4,
                       samples_per_bit=16)
    crushed = BackplaneChannel(0.9).process(wave)
    result = check_mask(crushed, BIT_RATE, small_mask(), skip_ui=20)
    assert not result.passes
    assert result.hexagon_violations > 0
    assert result.margin < 1.0


def test_amplitude_ceiling_violation():
    wave = bits_to_nrz(prbs7(220), BIT_RATE, amplitude=1.5,
                       samples_per_bit=16)
    mask = EyeMask(x1=0.25, x2=0.4, y1=0.05, y2=0.5)
    result = check_mask(wave, BIT_RATE, mask)
    assert result.amplitude_violations > 0
    assert not result.passes


def test_margin_decreases_with_noise():
    wave = bits_to_nrz(prbs7(300), BIT_RATE, amplitude=0.4,
                       samples_per_bit=16)
    clean = check_mask(wave, BIT_RATE, small_mask())
    noisy = check_mask(add_awgn(wave, 0.03, seed=1), BIT_RATE,
                       small_mask())
    assert noisy.margin < clean.margin


def test_receiver_output_passes_cdr_mask():
    # The LA's job: its output must present a compliant eye to the CDR.
    rx = build_input_interface()
    wave = bits_to_nrz(prbs7(260), BIT_RATE, amplitude=0.02,
                       samples_per_bit=16)
    out = rx.process(wave)
    mask = EyeMask(x1=0.3, x2=0.45, y1=0.1, y2=0.6)
    result = check_mask(out, BIT_RATE, mask, skip_ui=16)
    assert result.passes


def test_mask_validation():
    with pytest.raises(ValueError):
        EyeMask(x1=0.4, x2=0.3, y1=0.1, y2=0.5)
    with pytest.raises(ValueError):
        EyeMask(x1=0.1, x2=0.3, y1=0.5, y2=0.1)
    with pytest.raises(ValueError):
        small_mask().scaled(0.0)


def test_inner_boundary_shape():
    mask = small_mask(height=0.1)
    phases = np.array([0.1, 0.3, 0.5, 0.7, 0.9])
    bound = mask.inner_boundary(phases)
    assert bound[0] == 0.0          # outside the hexagon
    assert bound[2] == pytest.approx(0.1)  # flat top at centre
    assert bound[1] == pytest.approx(bound[3])  # symmetric


# -- CTLE baseline -------------------------------------------------------

def test_ctle_boost():
    ctle = GenericCtle(dc_gain=1.0, zero_hz=1.5e9, pole1_hz=6e9,
                       pole2_hz=12e9)
    assert 6.0 < ctle.boost_db() < 14.0


def test_ctle_matches_equalizer_response_shape():
    equalizer = CherryHooperEqualizer(
        input_pair=nmos(20e-6, 0.18e-6, 1e-3), control_voltage=0.6
    )
    ctle = ctle_matching_equalizer(equalizer)
    freqs = np.logspace(8, 10, 40)
    eq_gain = equalizer.gain_db(freqs)
    ctle_gain = ctle.transfer_function().magnitude_db(freqs)
    # Same family: boost region within a couple of dB of each other.
    band = (freqs > equalizer.zero_hz) & (freqs < 6e9)
    assert np.max(np.abs(eq_gain[band] - ctle_gain[band])) < 4.0


def test_ctle_equalizes_channel_like_the_real_one():
    from repro.analysis import EyeDiagram

    channel = BackplaneChannel(0.4)
    wave = bits_to_nrz(prbs7(260), BIT_RATE, amplitude=0.2,
                       samples_per_bit=16)
    received = channel.process(wave)
    equalizer = CherryHooperEqualizer(
        input_pair=nmos(20e-6, 0.18e-6, 1e-3), control_voltage=0.55
    )
    ctle = ctle_matching_equalizer(equalizer)
    m_raw = EyeDiagram.measure_waveform(received, BIT_RATE, skip_ui=16)
    m_ctle = EyeDiagram.measure_waveform(
        ctle.to_block().process(received), BIT_RATE, skip_ui=16
    )
    assert m_ctle.eye_width_ui > m_raw.eye_width_ui


def test_ctle_validation():
    with pytest.raises(ValueError):
        GenericCtle(dc_gain=0.0, zero_hz=1e9, pole1_hz=5e9, pole2_hz=9e9)
    with pytest.raises(ValueError):
        GenericCtle(dc_gain=1.0, zero_hz=5e9, pole1_hz=1e9, pole2_hz=9e9)
