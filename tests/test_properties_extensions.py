"""Property-based tests for the extension subsystems: 8b/10b coding,
FIR pre-emphasis, DFE, AC coupling, channel fitting, masks."""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis.mask import EyeMask
from repro.baselines import FirPreEmphasis
from repro.channel import BackplaneChannel, fit_channel_parameters
from repro.lti import AcCoupling
from repro.serdes import decode_bits, encode_bytes
from repro.signals import Waveform, bits_to_nrz

BIT_RATE = 10e9


# -- 8b/10b -----------------------------------------------------------------

@given(st.binary(min_size=1, max_size=64))
@settings(max_examples=60, deadline=None)
def test_8b10b_roundtrip_any_payload(payload):
    bits = encode_bytes(payload)
    assert decode_bits(bits) == payload


@given(st.binary(min_size=4, max_size=64))
@settings(max_examples=40, deadline=None)
def test_8b10b_run_length_bounded(payload):
    bits = encode_bytes(payload).tolist()
    longest = 1
    current = 1
    for a, b in zip(bits, bits[1:]):
        current = current + 1 if a == b else 1
        longest = max(longest, current)
    assert longest <= 5


@given(st.binary(min_size=8, max_size=64))
@settings(max_examples=40, deadline=None)
def test_8b10b_disparity_bounded(payload):
    bits = encode_bytes(payload)
    disparity = np.cumsum(2 * bits.astype(int) - 1)
    assert np.max(np.abs(disparity)) <= 8


@given(st.binary(min_size=1, max_size=32))
@settings(max_examples=40, deadline=None)
def test_8b10b_length_is_10x(payload):
    bits = encode_bytes(payload, prepend_commas=0)
    assert len(bits) == 10 * len(payload)


# -- FIR pre-emphasis ----------------------------------------------------------

tap_lists = st.lists(
    st.floats(min_value=-0.5, max_value=0.5, allow_nan=False),
    min_size=1, max_size=4,
).map(lambda rest: [1.0] + rest[1:])


@given(tap_lists, st.floats(min_value=0.05, max_value=1.0))
@settings(max_examples=40, deadline=None)
def test_fir_is_linear(taps, scale):
    fir = FirPreEmphasis(taps=taps, bit_rate=BIT_RATE)
    wave = bits_to_nrz(np.tile([1, 0, 1, 1, 0], 8), BIT_RATE,
                       amplitude=0.2, samples_per_bit=8)
    out_scaled = fir.process(wave * scale)
    scaled_out = fir.process(wave) * scale
    np.testing.assert_allclose(out_scaled.data, scaled_out.data,
                               atol=1e-12)


@given(tap_lists)
@settings(max_examples=40, deadline=None)
def test_fir_settled_level_is_tap_sum(taps):
    fir = FirPreEmphasis(taps=taps, bit_rate=BIT_RATE)
    wave = bits_to_nrz(np.ones(24, dtype=int), BIT_RATE, amplitude=0.2,
                       samples_per_bit=8, rise_time=0.0)
    out = fir.process(wave)
    expected = 0.1 * sum(taps)
    assert out.data[-1] == pytest.approx(expected, abs=1e-9)


# -- AC coupling --------------------------------------------------------------

@given(st.floats(min_value=1e-12, max_value=1e-6),
       st.floats(min_value=10.0, max_value=200.0))
@settings(max_examples=50, deadline=None)
def test_coupling_corner_formula(capacitance, termination):
    coupling = AcCoupling(capacitance=capacitance,
                          termination=termination)
    assert coupling.highpass_corner_hz == pytest.approx(
        1.0 / (2 * math.pi * termination * capacitance)
    )


@given(st.floats(min_value=0.0, max_value=1e-3))
@settings(max_examples=50, deadline=None)
def test_droop_is_monotone_and_bounded(run_seconds):
    coupling = AcCoupling(capacitance=10e-9)
    droop = coupling.droop_over(run_seconds)
    assert 0.0 <= droop <= 1.0
    longer = coupling.droop_over(run_seconds * 2.0)
    assert longer >= droop - 1e-15


# -- channel fitting -----------------------------------------------------------

@given(st.floats(min_value=1e-6, max_value=1e-4),
       st.floats(min_value=1e-10, max_value=1e-8),
       st.floats(min_value=0.1, max_value=2.0))
@settings(max_examples=40, deadline=None)
def test_fit_recovers_arbitrary_parameters(k_skin, k_diel, length):
    from repro.channel import ChannelParameters

    truth = BackplaneChannel(
        length, params=ChannelParameters(k_skin=k_skin,
                                         k_dielectric=k_diel)
    )
    freqs = np.linspace(0.5e9, 10e9, 30)
    loss = truth.loss_db(freqs)
    assume(loss.max() > 0.5)  # enough signal for a meaningful fit
    params = fit_channel_parameters(freqs, loss, length_m=length)
    refit = BackplaneChannel(length, params=params)
    np.testing.assert_allclose(refit.loss_db(freqs), loss,
                               rtol=0.02, atol=0.05)


# -- eye masks --------------------------------------------------------------

@given(st.floats(min_value=0.05, max_value=0.2),
       st.floats(min_value=0.21, max_value=0.5),
       st.floats(min_value=0.01, max_value=0.3))
@settings(max_examples=50, deadline=None)
def test_mask_boundary_never_exceeds_y1(x1, x2, y1):
    mask = EyeMask(x1=x1, x2=x2, y1=y1, y2=y1 * 3)
    phases = np.linspace(0.0, 1.0, 101)
    bound = mask.inner_boundary(phases)
    assert np.all(bound >= 0.0)
    assert np.all(bound <= y1 + 1e-12)
    # Symmetric about mid-UI.
    np.testing.assert_allclose(bound, bound[::-1], atol=1e-9)


# -- waveform delay composition ---------------------------------------------

@given(st.integers(min_value=0, max_value=10),
       st.integers(min_value=0, max_value=10))
@settings(max_examples=50, deadline=None)
def test_integer_delays_compose(n1, n2):
    rng = np.random.default_rng(n1 * 11 + n2)
    wave = Waveform(rng.normal(size=64), 1e9)
    once = wave.delayed(n1 / 1e9).delayed(n2 / 1e9)
    combined = wave.delayed((n1 + n2) / 1e9)
    np.testing.assert_allclose(once.data, combined.data, atol=1e-12)
