"""Gain stage (Fig 9) and DC-offset cancellation network (Fig 8)."""

import math

import pytest

from repro.core import (
    ActiveInductorLoad,
    GainStage,
    OffsetCancellationNetwork,
    duty_cycle_distortion,
)
from repro.devices import ActiveInductor, MosVaractor, nmos, pmos


def make_stage(**kwargs):
    defaults = dict(
        input_pair=nmos(40e-6, 0.18e-6, 1.25e-3),
        load_resistance=260.0,
        tail_current=2.5e-3,
        c_load_ext=54e-15,
        source_resistance=260.0,
        feedback_loop_gain=1.2,
        neg_miller=MosVaractor(4e-6, 0.5e-6),
    )
    defaults.update(kwargs)
    return GainStage(**defaults)


def test_gain_is_gm_times_r():
    stage = make_stage()
    expected = stage.input_pair.gm * 260.0
    assert stage.dc_gain == pytest.approx(expected)


def test_pull_up_resistors_give_larger_gain_than_active_load():
    # The paper's rationale for resistive loads in the gain cells: a
    # diode-ish PMOS load is capped at 1/gm, while a poly resistor can
    # be sized above it (here the typically-sized 60 um PMOS load).
    stage = make_stage()
    active = make_stage(
        peaking_inductor=None,
        load_resistance=1.0 / pmos(60e-6, 0.18e-6, 1.25e-3).gm,
    )
    assert stage.dc_gain >= active.dc_gain


def test_swing_is_itail_times_r():
    stage = make_stage()
    assert stage.output_swing == pytest.approx(2.5e-3 * 260.0)


def test_scaled_gain():
    stage = make_stage()
    bigger = stage.scaled_gain(1.5)
    assert bigger.dc_gain == pytest.approx(1.5 * stage.dc_gain)
    with pytest.raises(ValueError):
        stage.scaled_gain(0.0)


def test_peaking_inductor_extends_bandwidth():
    plain = make_stage()
    inductor = ActiveInductorLoad(
        ActiveInductor(pmos(10e-6, 0.18e-6, 0.3e-3), gate_resistance=6000.0)
    )
    peaked = make_stage(peaking_inductor=inductor,
                        load_resistance=plain.load_resistance * 1.6)
    # Comparable DC gain, more bandwidth from the parallel inductor.
    assert peaked.dc_gain == pytest.approx(plain.dc_gain, rel=0.35)
    assert peaked.bandwidth_3db() > 0.9 * plain.bandwidth_3db()


def test_feedback_ablation_shrinks_bandwidth():
    stage = make_stage()
    assert stage.bandwidth_3db() > 1.2 * stage.without_feedback().bandwidth_3db()


def test_neg_miller_ablation():
    stage = make_stage()
    assert stage.without_neg_miller().as_buffer().input_capacitance \
        > stage.as_buffer().input_capacitance


def test_validation():
    with pytest.raises(ValueError):
        make_stage(load_resistance=0.0)


# -- offset cancellation ------------------------------------------------------

def test_lowpass_corner_default_is_hz_scale():
    net = OffsetCancellationNetwork()
    assert net.lowpass_corner_hz == pytest.approx(
        1.0 / (2 * math.pi * 20e3 * 1e-6)
    )
    assert net.lowpass_corner_hz < 100.0


def test_highpass_corner_scales_with_gain():
    net = OffsetCancellationNetwork()
    assert net.highpass_corner_hz(100.0) == pytest.approx(
        101.0 * net.lowpass_corner_hz
    )
    with pytest.raises(ValueError):
        net.highpass_corner_hz(0.0)


def test_residual_offset_suppressed_by_loop_gain():
    net = OffsetCancellationNetwork()
    # 5 mV offset into a 40 dB amplifier: 0.5 V open loop, ~5 mV closed.
    open_loop = 100.0 * 5e-3
    closed = net.residual_output_offset(5e-3, 100.0)
    assert open_loop == pytest.approx(0.5)
    assert closed == pytest.approx(5e-3, rel=0.02)
    assert closed < open_loop / 50.0


def test_closed_loop_tf_is_bandpass():
    from repro.lti import first_order_lowpass

    net = OffsetCancellationNetwork()
    amp = first_order_lowpass(10e9, gain=100.0)
    closed = net.closed_loop_tf(amp)
    # DC gain crushed by the loop, midband gain preserved.
    assert abs(closed.dc_gain()) < 2.0
    import numpy as np

    mid = abs(closed.response(np.array([1e8]))[0])
    assert mid == pytest.approx(100.0, rel=0.05)


def test_baseline_wander_negligible_for_prbs7():
    net = OffsetCancellationNetwork()
    droop = net.baseline_wander_fraction(7, 10e9, 100.0)
    assert droop < 1e-4


def test_baseline_wander_grows_with_run_length():
    net = OffsetCancellationNetwork()
    assert net.baseline_wander_fraction(1000000, 10e9, 100.0) \
        > net.baseline_wander_fraction(7, 10e9, 100.0)


def test_duty_cycle_distortion():
    # Offset of 10% of the amplitude with 15 ps edges at 10 Gb/s.
    dcd = duty_cycle_distortion(residual_offset=25e-3,
                                signal_amplitude=0.25,
                                rise_time=15e-12, bit_rate=10e9)
    assert dcd == pytest.approx(2 * 25e-3 / (0.5 / 15e-12) * 10e9)
    assert dcd < 0.05


def test_duty_cycle_distortion_validation():
    with pytest.raises(ValueError):
        duty_cycle_distortion(1e-3, 0.0, 1e-12, 1e9)
    with pytest.raises(ValueError):
        duty_cycle_distortion(1e-3, 0.1, -1.0, 1e9)


def test_network_validation():
    with pytest.raises(ValueError):
        OffsetCancellationNetwork(branch_resistance=0.0)
    with pytest.raises(ValueError):
        OffsetCancellationNetwork(capacitance=-1e-6)
    with pytest.raises(ValueError):
        OffsetCancellationNetwork(sense_gain=1.5)
    with pytest.raises(ValueError):
        OffsetCancellationNetwork().baseline_wander_fraction(0, 1e9, 10.0)
