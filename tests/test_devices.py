"""Device models: technology constants, MOSFETs, active inductors,
varactors and passives."""

import math

import numpy as np
import pytest

from repro.devices import (
    ActiveInductor,
    Capacitor,
    MosVaractor,
    Mosfet,
    Resistor,
    SpiralInductor,
    TSMC180,
    Technology,
    neutralized_input_capacitance,
    nmos,
    pmos,
    rc_lowpass_tf,
    rl_shunt_peaking_tf,
)


# -- technology -------------------------------------------------------------

def test_tsmc180_constants_are_physical():
    assert TSMC180.l_min == pytest.approx(0.18e-6)
    assert TSMC180.vdd == 1.8
    assert TSMC180.u_n_cox > TSMC180.u_p_cox  # electrons beat holes


def test_mobility_factor_decreases_with_temperature():
    hot = TSMC180.mobility_factor(400.0)
    cold = TSMC180.mobility_factor(250.0)
    assert hot < 1.0 < cold


def test_vth_decreases_with_temperature():
    assert TSMC180.vth(True, 400.0) < TSMC180.vth(True, 300.0)


def test_velocity_sat_overdrive_scales_with_length():
    assert TSMC180.v_sat_overdrive(0.36e-6) == pytest.approx(
        2 * TSMC180.v_sat_overdrive(0.18e-6)
    )


def test_technology_rejects_nonpositive():
    with pytest.raises(ValueError):
        Technology(name="bad", l_min=0.0, vdd=1.8, u_n_cox=1e-4,
                   u_p_cox=1e-4, vth_n=0.4, vth_p=0.4,
                   cox_per_area=8e-3, c_overlap_per_width=3e-10,
                   e_sat=4e6, lambda_per_length=2e-8)


# -- mosfet --------------------------------------------------------------

def test_nmos_ft_is_tens_of_ghz():
    device = nmos(20e-6, 0.18e-6, 2e-3)
    assert 15e9 < device.ft < 80e9


def test_gm_increases_with_current():
    low = nmos(20e-6, 0.18e-6, 0.5e-3)
    high = nmos(20e-6, 0.18e-6, 2e-3)
    assert high.gm > low.gm


def test_gm_id_efficiency_improves_at_low_overdrive():
    dense = nmos(10e-6, 0.18e-6, 2e-3)   # high current density
    sparse = nmos(80e-6, 0.18e-6, 2e-3)  # low current density
    assert sparse.gm / sparse.drain_current > dense.gm / dense.drain_current


def test_velocity_saturation_softens_gm():
    device = nmos(10e-6, 0.18e-6, 2e-3)
    square_law_gm = device.beta * device.v_overdrive
    assert device.gm < square_law_gm


def test_current_equation_consistency():
    # v_overdrive solves the velocity-saturated I-V: substituting back
    # must reproduce the drain current.
    device = nmos(20e-6, 0.18e-6, 1e-3)
    vov = device.v_overdrive
    v_sat = device.tech.v_sat_overdrive(device.length)
    reconstructed = 0.5 * device.beta * vov**2 / (1 + vov / v_sat)
    assert reconstructed == pytest.approx(device.drain_current, rel=1e-9)


def test_ro_from_channel_length_modulation():
    device = nmos(20e-6, 0.18e-6, 1e-3)
    assert device.ro == pytest.approx(1.0 / device.gds)
    longer = nmos(20e-6, 0.36e-6, 1e-3)
    assert longer.ro > device.ro


def test_capacitances_scale_with_width():
    small = nmos(10e-6, 0.18e-6, 1e-3)
    large = nmos(20e-6, 0.18e-6, 2e-3)
    assert large.cgs == pytest.approx(2 * small.cgs)
    assert large.cgd == pytest.approx(2 * small.cgd)


def test_scaled_preserves_overdrive():
    device = nmos(20e-6, 0.18e-6, 1e-3)
    double = device.scaled(2.0)
    assert double.v_overdrive == pytest.approx(device.v_overdrive)
    assert double.gm == pytest.approx(2 * device.gm)


def test_pmos_has_lower_gm_than_nmos():
    n = nmos(20e-6, 0.18e-6, 1e-3)
    p = pmos(20e-6, 0.18e-6, 1e-3)
    assert p.gm < n.gm


def test_temperature_lowers_gm():
    cold = nmos(20e-6, 0.18e-6, 1e-3, temperature_k=250.0)
    hot = nmos(20e-6, 0.18e-6, 1e-3, temperature_k=400.0)
    assert hot.gm < cold.gm
    assert nmos(20e-6, 0.18e-6, 1e-3).at_temperature(400.0).gm \
        == pytest.approx(hot.gm)


def test_mosfet_validation():
    with pytest.raises(ValueError):
        Mosfet(width=0.0, length=0.18e-6, drain_current=1e-3)
    with pytest.raises(ValueError):
        Mosfet(width=1e-6, length=0.1e-6, drain_current=1e-3)  # < L_min
    with pytest.raises(ValueError):
        Mosfet(width=1e-6, length=0.18e-6, drain_current=0.0)
    with pytest.raises(ValueError):
        nmos(1e-6, 0.18e-6, 1e-3).scaled(0.0)


# -- active inductor ---------------------------------------------------------

def make_inductor(rg=1200.0):
    return ActiveInductor(pmos(40e-6, 0.18e-6, 1e-3), gate_resistance=rg)


def test_active_inductor_dc_is_one_over_gm():
    load = make_inductor()
    assert load.r_dc == pytest.approx(1.0 / load.device.gm)


def test_active_inductor_inductive_condition():
    load = make_inductor(rg=1200.0)
    assert load.is_inductive
    assert load.l_effective > 0
    small_rg = make_inductor(rg=50.0)
    assert not small_rg.is_inductive
    assert small_rg.l_effective <= 0


def test_impedance_rises_between_zero_and_pole():
    load = make_inductor()
    f = np.array([load.zero_hz / 10, math.sqrt(load.zero_hz * load.pole_hz),
                  load.pole_hz * 10])
    z = np.abs(load.impedance(f))
    assert z[1] > z[0]  # rising = inductive
    assert z[2] == pytest.approx(load.gate_resistance, rel=0.2)


def test_zero_below_pole():
    load = make_inductor()
    assert load.zero_hz < load.pole_hz


def test_quality_factor_positive_in_band():
    load = make_inductor()
    f_mid = math.sqrt(load.zero_hz * load.pole_hz)
    assert load.quality_factor(f_mid) > 0.3


def test_scaling_width_lowers_rdc():
    load = make_inductor()
    double = load.scaled(2.0)
    assert double.r_dc == pytest.approx(load.r_dc / 2.0, rel=1e-6)


def test_with_gate_resistance():
    load = make_inductor().with_gate_resistance(2000.0)
    assert load.gate_resistance == 2000.0


def test_active_inductor_rejects_bad_rg():
    with pytest.raises(ValueError):
        ActiveInductor(pmos(10e-6, 0.18e-6, 1e-3), gate_resistance=0.0)


# -- varactor ----------------------------------------------------------------

def test_varactor_cv_curve_monotone():
    var = MosVaractor(4e-6, 0.5e-6)
    v = np.linspace(-1.0, 1.0, 21)
    c = var.capacitance(v)
    assert np.all(np.diff(c) > 0)


def test_varactor_at_zero_bias_is_large_fraction_of_oxide():
    # "a larger fraction of the gate oxide capacitance" near Vgs = 0.
    var = MosVaractor(4e-6, 0.5e-6)
    assert var.capacitance_at_zero_bias() > 0.6 * var.c_oxide


def test_varactor_tuning_ratio():
    var = MosVaractor(4e-6, 0.5e-6)
    assert var.tuning_ratio() == pytest.approx(3.0)


def test_varactor_validation():
    with pytest.raises(ValueError):
        MosVaractor(0.0, 1e-6)
    with pytest.raises(ValueError):
        MosVaractor(1e-6, 1e-6, c_min_fraction=0.9, c_max_fraction=0.5)


def test_neutralization_cancels_miller():
    c_gd = 10e-15
    gain = 3.0
    without = neutralized_input_capacitance(c_gd, 0.0, gain)
    assert without == pytest.approx(c_gd * 4.0)
    perfect = neutralized_input_capacitance(c_gd, c_gd, gain)
    assert perfect == pytest.approx(2 * c_gd)
    # Over-neutralization floors at zero.
    over = neutralized_input_capacitance(c_gd, 100 * c_gd, gain)
    assert over == 0.0


def test_neutralization_rejects_negative():
    with pytest.raises(ValueError):
        neutralized_input_capacitance(-1e-15, 0.0, 2.0)


# -- passives -------------------------------------------------------------

def test_resistor_corners():
    r = Resistor(100.0, tolerance=0.15)
    assert r.corner(3.0) == pytest.approx(115.0)
    assert r.corner(-3.0) == pytest.approx(85.0)
    with pytest.raises(ValueError):
        r.corner(5.0)


def test_capacitor_impedance():
    c = Capacitor(1e-12)
    z = c.impedance(np.array([1e9]))[0]
    assert abs(z) == pytest.approx(1 / (2 * np.pi * 1e9 * 1e-12), rel=1e-9)
    assert z.imag < 0


def test_spiral_area_scales_with_sqrt_inductance():
    small = SpiralInductor(1e-9)
    big = SpiralInductor(4e-9)
    assert big.area == pytest.approx(4 * small.area, rel=1e-6)


def test_spiral_2nh_is_about_0p02mm2():
    # The calibration point behind the paper's "core area ~ one spiral".
    spiral = SpiralInductor(2e-9)
    assert spiral.area == pytest.approx(0.0225e-6, rel=0.01)  # m^2


def test_spiral_impedance_inductive_below_srf():
    spiral = SpiralInductor(2e-9, self_resonance_hz=25e9)
    z = spiral.impedance(np.array([1e9, 5e9]))
    assert z[1].imag > z[0].imag > 0


def test_rc_lowpass_tf():
    tf = rc_lowpass_tf(100.0, 1e-12, gain=2.0)
    assert tf.dc_gain() == pytest.approx(2.0)
    assert tf.bandwidth_3db() == pytest.approx(1 / (2 * np.pi * 1e-10),
                                               rel=1e-2)


def test_shunt_peaking_extends_bandwidth():
    r, c = 200.0, 100e-15
    plain = rc_lowpass_tf(r, c)
    # Optimal shunt peaking: L ~ 0.4 R^2 C.
    peaked = rl_shunt_peaking_tf(r, 0.4 * r * r * c, c, gm=1.0 / r)
    assert peaked.bandwidth_3db() > 1.5 * plain.bandwidth_3db()


def test_passive_validation():
    with pytest.raises(ValueError):
        Resistor(0.0)
    with pytest.raises(ValueError):
        Capacitor(-1e-12)
    with pytest.raises(ValueError):
        SpiralInductor(0.0)
    with pytest.raises(ValueError):
        rc_lowpass_tf(-1.0, 1e-12)
    with pytest.raises(ValueError):
        rl_shunt_peaking_tf(1.0, 0.0, 1e-12)
