"""NRZ line coding: levels, rise time, jitter hooks."""

import numpy as np
import pytest

from repro.signals import NrzEncoder, bits_to_nrz, ideal_square_wave


def test_levels_map_to_half_amplitude():
    w = bits_to_nrz(np.array([1, 1, 0, 0]), 10e9, amplitude=0.2,
                    rise_time=0.0)
    assert w.data.max() == pytest.approx(0.1)
    assert w.data.min() == pytest.approx(-0.1)
    assert w.peak_to_peak() == pytest.approx(0.2)


def test_sample_rate_and_length():
    enc = NrzEncoder(bit_rate=10e9, samples_per_bit=32)
    w = enc.encode(np.array([0, 1, 0]))
    assert w.sample_rate == pytest.approx(320e9)
    assert len(w) == 96


def test_default_rise_time_is_15_percent_ui():
    enc = NrzEncoder(bit_rate=10e9)
    assert enc.rise_time == pytest.approx(15e-12)


def test_rise_time_measured_20_80():
    enc = NrzEncoder(bit_rate=1e9, samples_per_bit=256, amplitude=1.0,
                     rise_time=200e-12)
    w = enc.encode(np.array([0, 1, 1, 1]))
    data = w.data
    # Measure the 20-80% crossing around the single rising edge.
    t20 = np.flatnonzero(data > -0.5 + 0.2)[0]
    t80 = np.flatnonzero(data > -0.5 + 0.8)[0]
    measured = (t80 - t20) / w.sample_rate
    assert measured == pytest.approx(200e-12, rel=0.1)


def test_square_edges_when_rise_time_zero():
    w = bits_to_nrz(np.array([0, 1]), 1e9, rise_time=0.0, samples_per_bit=8)
    unique = np.unique(w.data)
    np.testing.assert_allclose(unique, [-0.5, 0.5])


def test_edge_offsets_shift_transitions():
    enc = NrzEncoder(bit_rate=1e9, samples_per_bit=64, rise_time=0.0)
    bits = np.array([0, 1, 0, 1])
    nominal = enc.encode(bits)
    offsets = np.array([0.0, 0.25e-9, 0.0, 0.0])  # delay the first edge
    late = enc.encode(bits, edge_offsets=offsets)
    # First transition occurs 16 samples later.
    first_nominal = np.flatnonzero(np.diff(nominal.data) > 0)[0]
    first_late = np.flatnonzero(np.diff(late.data) > 0)[0]
    assert first_late - first_nominal == 16


def test_edge_offsets_length_mismatch_rejected():
    enc = NrzEncoder(bit_rate=1e9)
    with pytest.raises(ValueError):
        enc.encode(np.array([0, 1]), edge_offsets=np.array([0.0]))


def test_rejects_non_binary_bits():
    with pytest.raises(ValueError):
        bits_to_nrz(np.array([0, 2]), 1e9)


def test_rejects_empty_bits():
    with pytest.raises(ValueError):
        bits_to_nrz(np.array([]), 1e9)


def test_rejects_bad_parameters():
    with pytest.raises(ValueError):
        NrzEncoder(bit_rate=0.0)
    with pytest.raises(ValueError):
        NrzEncoder(bit_rate=1e9, samples_per_bit=1)
    with pytest.raises(ValueError):
        NrzEncoder(bit_rate=1e9, rise_time=-1e-12)


def test_rejects_non_positive_amplitude():
    with pytest.raises(ValueError, match="amplitude must be positive, "
                                         "got 0.0"):
        NrzEncoder(bit_rate=1e9, amplitude=0.0)
    with pytest.raises(ValueError, match="amplitude must be positive, "
                                         "got -0.2"):
        NrzEncoder(bit_rate=1e9, amplitude=-0.2)


def test_dc_balance_of_alternating():
    # Ideal-edge NRZ quantizes edges to the sample grid, so the residual
    # DC is bounded by one sample per edge, not exactly zero.
    w = bits_to_nrz(np.tile([0, 1], 50), 10e9, rise_time=0.0)
    assert abs(w.mean()) < 2e-3


def test_ideal_square_wave():
    w = ideal_square_wave(5e9, n_cycles=4, amplitude=1.0,
                          samples_per_cycle=64)
    assert w.peak_to_peak() == pytest.approx(1.0)
    # Fundamental period = 64 samples.
    np.testing.assert_allclose(w.data[:32], 0.5)
    np.testing.assert_allclose(w.data[32:64], -0.5)


def test_ideal_square_wave_rejects_bad_args():
    with pytest.raises(ValueError):
        ideal_square_wave(0.0, 4)
    with pytest.raises(ValueError):
        ideal_square_wave(1e9, 0)


def test_ideal_square_wave_length_and_rate():
    # Dyadic frequency: every edge time and sample time is an exact
    # float, so the square is perfect (at 10 GHz-style rates, edges
    # quantize to the sample grid within one sample instead).
    w = ideal_square_wave(2.0, n_cycles=3, amplitude=0.6,
                          samples_per_cycle=10)
    assert len(w) == 30
    assert w.sample_rate == pytest.approx(20.0)
    # Exactly two levels, half a cycle each, no intermediate samples.
    np.testing.assert_allclose(np.unique(w.data), [-0.3, 0.3])
    assert np.count_nonzero(w.data > 0) == 15


def test_ideal_edges_land_on_bit_boundaries():
    # rise_time=0 routes through the searchsorted ideal-edge path: at a
    # dyadic bit rate every sample inside bit k holds exactly that
    # bit's level.
    bits = np.array([0, 1, 1, 0, 1])
    w = bits_to_nrz(bits, 2.0, amplitude=0.4, rise_time=0.0,
                    samples_per_bit=8)
    expected = np.repeat((bits - 0.5) * 0.4, 8)
    np.testing.assert_array_equal(w.data, expected)


def test_ideal_edges_respect_edge_offsets_exactly():
    enc = NrzEncoder(bit_rate=2.0, samples_per_bit=16, rise_time=0.0)
    bits = np.array([0, 1, 0])
    # Advance the second edge by a quarter UI: the transition lands
    # 4 samples early, still perfectly square.
    offsets = np.array([0.0, -0.125, 0.0])
    w = enc.encode(bits, edge_offsets=offsets)
    assert np.all(np.isin(w.data, [-0.5, 0.5]))
    first_rise = np.flatnonzero(np.diff(w.data) > 0)[0]
    assert first_rise == 16 - 4 - 1
