"""Limiting amplifier: gain chain, limiting, offset loop."""

import numpy as np
import pytest

from repro.core import build_input_interface
from repro.signals import bits_to_nrz, prbs7


@pytest.fixture(scope="module")
def la():
    return build_input_interface().limiting_amplifier


def test_chain_order(la):
    chain = la.stage_chain()
    assert len(chain) == 6  # input buffer + 4 gain stages + output buffer
    assert chain[0].name == "la-input-buffer"
    assert chain[-1].name == "la-output-buffer"


def test_dc_gain_in_paper_range(la):
    # The LA alone carries most of the 40 dB input-interface gain.
    assert 30.0 < la.dc_gain_db() < 42.0


def test_bandwidth_near_10ghz(la):
    assert 8e9 < la.bandwidth_3db() < 13e9


def test_output_swing_250mv(la):
    assert la.output_swing == pytest.approx(0.25)


def test_small_input_limits_to_full_swing(la):
    # 10 mV pp through the LA's ~35 dB drives the output into limiting.
    wave = bits_to_nrz(prbs7(150), 10e9, amplitude=0.010,
                       samples_per_bit=16)
    out = la.process(wave)
    settled = out.data[len(out.data) // 2:]
    assert np.max(settled) > 0.8 * la.output_swing


def test_limiting_makes_output_insensitive_to_input_swing(la):
    small = bits_to_nrz(prbs7(150), 10e9, amplitude=0.01,
                        samples_per_bit=16)
    large = bits_to_nrz(prbs7(150), 10e9, amplitude=0.5,
                        samples_per_bit=16)
    out_small = la.process(small).skip(300)
    out_large = la.process(large).skip(300)
    ratio = out_large.peak_to_peak() / out_small.peak_to_peak()
    assert ratio == pytest.approx(1.0, abs=0.15)


def test_gain_bandwidth_product(la):
    # ~35 dB LA times ~9.5 GHz: several hundred GHz of GBW.
    gbw = la.gain_bandwidth_product()
    assert gbw > 50 * 8e9


def test_offset_without_loop_saturates(la):
    offset_la = la.with_offset(5e-3)
    assert offset_la.uncancelled_output_offset() > offset_la.output_swing


def test_offset_loop_rescues_offset(la):
    offset_la = la.with_offset(5e-3)
    residual = offset_la.residual_output_offset()
    assert residual < 0.05 * offset_la.output_swing
    assert residual < offset_la.uncancelled_output_offset() / 20.0


def test_offset_applied_in_process(la):
    wave = bits_to_nrz(prbs7(120), 10e9, amplitude=0.02, samples_per_bit=16)
    clean = la.process(wave).skip(200)
    shifted = la.with_offset(5e-3).process(wave).skip(200)
    # The residual offset slightly biases the output mean, but far less
    # than the uncancelled 0.5 V would.
    delta = abs(shifted.mean() - clean.mean())
    assert delta < 0.1 * la.output_swing


def test_highpass_corner_is_far_below_data_rate(la):
    assert la.highpass_corner_hz() < 1e6  # MHz-scale vs 10 GHz data


def test_ablations_reduce_bandwidth(la):
    assert la.without_feedback().bandwidth_3db() < 0.8 * la.bandwidth_3db()
    assert la.without_neg_miller().bandwidth_3db() < la.bandwidth_3db()


def test_ablations_preserve_dc_gain(la):
    assert la.without_feedback().dc_gain_db() == pytest.approx(
        la.dc_gain_db(), abs=0.1
    )


def test_supply_current_reasonable(la):
    # The LA burns most of the input interface's ~21 mA.
    assert 0.010 < la.supply_current < 0.025


def test_requires_gain_stages():
    from repro.core import LimitingAmplifier

    with pytest.raises(ValueError):
        LimitingAmplifier(
            input_buffer=la_build_buffer(),
            gain_stages=[],
            output_buffer=la_build_buffer(),
        )


def la_build_buffer():
    from repro.core import CmlBuffer, ResistiveLoad
    from repro.devices import nmos

    return CmlBuffer(nmos(20e-6, 0.18e-6, 1e-3), ResistiveLoad(200.0),
                     tail_current=2e-3)
