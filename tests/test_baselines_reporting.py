"""Baselines (spiral inductors, published records) and reporting."""

import numpy as np
import pytest

from repro.baselines import (
    GALAL_RAZAVI_2003,
    PAPER_THIS_WORK,
    TAO_BERROTH_2003,
    bandwidth_parity_check,
    compare_area,
    equivalent_spiral_load,
    measured_this_work,
    paper_style_comparison,
    spiral_variant_of,
    table1_rows,
)
from repro.core import ActiveInductorLoad, ResistiveLoad, build_input_interface
from repro.devices import ActiveInductor, pmos
from repro.reporting import (
    format_comparison,
    format_table,
    render_eye,
    render_gain_curve,
    render_waveform,
)


def active_buffer():
    return build_input_interface().limiting_amplifier.input_buffer


# -- spiral baseline -----------------------------------------------------------

def test_equivalent_spiral_matches_rdc():
    load = active_buffer().load
    spiral = equivalent_spiral_load(load)
    assert spiral.r_dc == pytest.approx(load.r_dc)
    assert spiral.spiral.inductance >= 0.5e-9


def test_spiral_variant_has_same_dc_gain():
    buffer = active_buffer()
    variant = spiral_variant_of(buffer)
    assert variant.dc_gain == pytest.approx(buffer.dc_gain, rel=1e-6)


def test_spiral_variant_of_resistive_buffer_is_unchanged():
    buffer = active_buffer().with_load(ResistiveLoad(200.0))
    assert spiral_variant_of(buffer) is buffer


def test_bandwidth_parity():
    # "active inductors ... have the same frequency response"
    assert bandwidth_parity_check(active_buffer(), tolerance=0.5)
    with pytest.raises(ValueError):
        bandwidth_parity_check(active_buffer().with_load(ResistiveLoad(200.0)))


def test_paper_style_area_reduction_is_about_80_percent():
    comparison = paper_style_comparison()
    assert comparison.reduction_percent >= 70.0
    assert comparison.active_area_mm2 == pytest.approx(0.028, rel=0.02)
    assert comparison.n_spirals >= 6


def test_compare_area_requires_inductive_buffers():
    from repro.core import PowerAreaBudget

    budget = PowerAreaBudget()
    budget.add("x", 1e-3, 1e-8)
    with pytest.raises(ValueError):
        compare_area(budget, [active_buffer().with_load(ResistiveLoad(100.0))])


# -- published records ---------------------------------------------------------

def test_published_record_values_match_table1():
    assert TAO_BERROTH_2003.power_mw == 120.0
    assert TAO_BERROTH_2003.bandwidth_ghz == 6.5
    assert GALAL_RAZAVI_2003.dc_gain_db == 50.0
    assert PAPER_THIS_WORK.area_mm2 == 0.028


def test_measured_this_work_close_to_paper_column():
    measured = measured_this_work()
    assert measured.power_mw == pytest.approx(PAPER_THIS_WORK.power_mw,
                                              rel=0.10)
    assert measured.bandwidth_ghz == pytest.approx(
        PAPER_THIS_WORK.bandwidth_ghz, rel=0.10
    )
    assert measured.dc_gain_db == pytest.approx(
        PAPER_THIS_WORK.dc_gain_db, abs=2.5
    )
    assert measured.area_mm2 == pytest.approx(PAPER_THIS_WORK.area_mm2,
                                              rel=0.02)


def test_this_work_wins_power_and_area():
    # The paper's Table I conclusion.
    measured = measured_this_work()
    for other in (TAO_BERROTH_2003, GALAL_RAZAVI_2003):
        assert measured.power_mw < other.power_mw
        assert measured.area_mm2 < other.area_mm2


def test_figure_of_merit_ranks_this_work_first():
    measured = measured_this_work()
    assert measured.figure_of_merit() > TAO_BERROTH_2003.figure_of_merit()


def test_table1_rows_structure():
    rows = table1_rows()
    metrics = [row["metric"] for row in rows]
    assert "Power consumption" in metrics
    assert "Bandwidth (-3dB)" in metrics
    assert len(rows) == 7
    # every row carries all four columns
    for row in rows:
        assert len(row) == 6  # metric + unit + 4 columns


# -- reporting -----------------------------------------------------------------

def test_format_table_alignment():
    rows = [{"a": 1.0, "b": "x"}, {"a": 22.5, "b": "yy"}]
    text = format_table(rows)
    lines = text.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("a")
    assert all(len(line) == len(lines[0]) for line in lines[1:])


def test_format_table_validation():
    with pytest.raises(ValueError):
        format_table([])


def test_format_comparison():
    text = format_comparison("without", "with",
                             {"eye height (mV)": (10.0, 50.0)})
    assert "without" in text and "with" in text
    assert "eye height" in text


def test_render_eye_produces_grid():
    from repro.analysis import EyeDiagram
    from repro.signals import bits_to_nrz, prbs7

    wave = bits_to_nrz(prbs7(120), 10e9, amplitude=0.4, samples_per_bit=16)
    eye = EyeDiagram(wave, 10e9)
    art = render_eye(eye, width=32, height=10, title="test eye")
    lines = art.splitlines()
    assert lines[0] == "test eye"
    assert len(lines) == 13  # title + 10 rows + axis + stats
    assert all(len(line) == 32 for line in lines[1:11])


def test_render_eye_validation():
    from repro.analysis import EyeDiagram
    from repro.signals import bits_to_nrz, prbs7

    wave = bits_to_nrz(prbs7(120), 10e9, amplitude=0.4, samples_per_bit=16)
    eye = EyeDiagram(wave, 10e9)
    with pytest.raises(ValueError):
        render_eye(eye, width=4, height=4)


def test_render_gain_curve():
    freqs = np.logspace(8, 10, 30)
    gains = -20 * np.log10(1 + freqs / 1e9)
    art = render_gain_curve(freqs, gains, width=40, height=10)
    assert "*" in art
    with pytest.raises(ValueError):
        render_gain_curve([1e9], [0.0])


def test_render_waveform():
    t = np.linspace(0, 1e-9, 50)
    v = np.sin(2 * np.pi * 5e9 * t)
    art = render_waveform(t, v, title="sine")
    assert art.splitlines()[0] == "sine"
    with pytest.raises(ValueError):
        render_waveform([0.0], [1.0])
