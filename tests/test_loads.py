"""Load elements and node-impedance algebra."""

import numpy as np
import pytest

from repro.core import (
    ActiveInductorLoad,
    ParallelLoad,
    ResistiveLoad,
    SpiralInductorLoad,
    node_impedance,
    stage_tf,
)
from repro.devices import ActiveInductor, SpiralInductor, pmos


def active_load(rg=1200.0):
    return ActiveInductorLoad(ActiveInductor(pmos(40e-6, 0.18e-6, 1e-3), rg))


def test_resistive_load_is_flat():
    load = ResistiveLoad(200.0)
    assert load.r_dc == 200.0
    tf = load.impedance_tf()
    f = np.array([1e8, 1e10])
    np.testing.assert_allclose(np.abs(tf.response(f)), 200.0)


def test_resistive_load_area_scales():
    assert ResistiveLoad(200.0).area == pytest.approx(2 * ResistiveLoad(100.0).area)
    with pytest.raises(ValueError):
        ResistiveLoad(0.0)


def test_active_inductor_load_delegates():
    load = active_load()
    assert load.r_dc == pytest.approx(load.inductor.r_dc)
    assert load.area > 0
    scaled = load.scaled(2.0)
    assert scaled.r_dc == pytest.approx(load.r_dc / 2.0, rel=1e-6)
    assert scaled.area == pytest.approx(2 * load.area)


def test_active_load_is_tiny_compared_to_spiral():
    # The heart of the 80% area claim: per element, active << spiral.
    active = active_load()
    spiral = SpiralInductorLoad(active.r_dc, SpiralInductor(2e-9))
    assert active.area < 0.02 * spiral.area


def test_spiral_load_impedance_is_r_plus_sl():
    load = SpiralInductorLoad(100.0, SpiralInductor(2e-9))
    z = load.impedance_tf().response(np.array([0.0, 8e9]))
    assert abs(z[0]) == pytest.approx(100.0)
    expected = abs(100.0 + 2j * np.pi * 8e9 * 2e-9)
    assert abs(z[1]) == pytest.approx(expected, rel=1e-9)


def test_parallel_load_combines_resistances():
    combo = ParallelLoad((ResistiveLoad(100.0), ResistiveLoad(100.0)))
    assert combo.r_dc == pytest.approx(50.0)
    assert combo.area == pytest.approx(2 * ResistiveLoad(100.0).area)
    z = combo.impedance_tf().response(np.array([1e9]))
    assert abs(z[0]) == pytest.approx(50.0)


def test_parallel_load_needs_elements():
    with pytest.raises(ValueError):
        ParallelLoad(())


def test_node_impedance_adds_pole():
    load = ResistiveLoad(200.0)
    z = node_impedance(load, 100e-15)
    # RC pole at 1/(2 pi R C) ~ 7.96 GHz.
    assert z.bandwidth_3db() == pytest.approx(7.96e9, rel=0.01)
    assert z.dc_gain() == pytest.approx(200.0)


def test_node_impedance_zero_cap_is_identity():
    load = ResistiveLoad(100.0)
    z = node_impedance(load, 0.0)
    assert z.dc_gain() == pytest.approx(100.0)
    assert z.order == 0


def test_node_impedance_with_active_inductor_peaks():
    # Active inductor + node cap -> peaked second-order response.
    z = node_impedance(active_load(rg=2500.0), 80e-15)
    assert z.peaking_db() > 0.5


def test_node_impedance_rejects_negative_cap():
    with pytest.raises(ValueError):
        node_impedance(ResistiveLoad(100.0), -1e-15)


def test_stage_tf_gain():
    tf = stage_tf(10e-3, ResistiveLoad(200.0), 50e-15)
    assert tf.dc_gain() == pytest.approx(2.0)
    with pytest.raises(ValueError):
        stage_tf(0.0, ResistiveLoad(100.0), 0.0)
