"""Eye-diagram measurement against waveforms with known properties."""

import numpy as np
import pytest

from repro.analysis import EyeDiagram
from repro.signals import RandomJitter, NrzEncoder, bits_to_nrz, prbs7


def clean_wave(amplitude=0.4, n_bits=200, spb=16):
    return bits_to_nrz(prbs7(n_bits), 10e9, amplitude=amplitude,
                       samples_per_bit=spb)


def test_clean_eye_is_wide_open():
    m = EyeDiagram.measure_waveform(clean_wave(), 10e9)
    assert m.is_open
    assert m.eye_height > 0.9 * 0.4
    assert m.eye_width_ui > 0.8
    assert m.eye_amplitude == pytest.approx(0.4, rel=0.02)


def test_levels_of_clean_eye():
    m = EyeDiagram.measure_waveform(clean_wave(), 10e9)
    assert m.level_one == pytest.approx(0.2, rel=0.05)
    assert m.level_zero == pytest.approx(-0.2, rel=0.05)


def test_eye_height_shrinks_with_noise():
    from repro.signals import add_awgn

    clean = clean_wave()
    noisy = add_awgn(clean, 0.02, seed=2)
    m_clean = EyeDiagram.measure_waveform(clean, 10e9)
    m_noisy = EyeDiagram.measure_waveform(noisy, 10e9)
    assert m_noisy.eye_height < m_clean.eye_height
    assert m_noisy.q_factor < m_clean.q_factor


def test_jitter_shrinks_eye_width():
    encoder = NrzEncoder(bit_rate=10e9, samples_per_bit=32, amplitude=0.4)
    bits = prbs7(300)
    clean = encoder.encode(bits)
    jittered = encoder.encode(
        bits, edge_offsets=RandomJitter(3e-12, seed=4).offsets(300, 10e9)
    )
    m_clean = EyeDiagram.measure_waveform(clean, 10e9)
    m_jit = EyeDiagram.measure_waveform(jittered, 10e9)
    assert m_jit.eye_width_ui < m_clean.eye_width_ui
    assert m_jit.jitter_pp > m_clean.jitter_pp


def test_measured_jitter_rms_close_to_injected():
    encoder = NrzEncoder(bit_rate=10e9, samples_per_bit=32, amplitude=0.4,
                         rise_time=10e-12)
    bits = prbs7(500)
    rj = 2e-12
    jittered = encoder.encode(
        bits, edge_offsets=RandomJitter(rj, seed=9).offsets(500, 10e9)
    )
    m = EyeDiagram.measure_waveform(jittered, 10e9)
    assert m.jitter_rms == pytest.approx(rj, rel=0.5)


def test_closed_eye_reports_nonpositive_height():
    from repro.channel import BackplaneChannel

    # A brutal channel at 10 Gb/s: the raw eye closes.
    wave = clean_wave(n_bits=260)
    closed = BackplaneChannel(0.9).process(wave)
    m = EyeDiagram.measure_waveform(closed, 10e9, skip_ui=20)
    assert m.eye_height <= 0.02


def test_non_integer_sample_ratio_is_resampled():
    wave = clean_wave().resampled(150e9)  # 15 samples/UI
    m = EyeDiagram.measure_waveform(wave, 10e9)
    assert m.is_open


def test_two_ui_traces_shape():
    eye = EyeDiagram(clean_wave(n_bits=100, spb=16), 10e9, skip_ui=4)
    traces = eye.two_ui_traces()
    assert traces.shape[1] == 32


def test_degenerate_all_ones_signal():
    wave = bits_to_nrz(np.ones(64, dtype=int), 10e9, samples_per_bit=16)
    m = EyeDiagram.measure_waveform(wave, 10e9)
    assert not m.is_open


def test_eye_requires_enough_ui():
    wave = bits_to_nrz(prbs7(10), 10e9, samples_per_bit=16)
    with pytest.raises(ValueError):
        EyeDiagram(wave, 10e9)


def test_eye_requires_enough_oversampling():
    wave = bits_to_nrz(prbs7(100), 10e9, samples_per_bit=2)
    with pytest.raises(ValueError):
        EyeDiagram(wave, 10e9)


def test_validation():
    wave = clean_wave()
    with pytest.raises(ValueError):
        EyeDiagram(wave, bit_rate=0.0)
    with pytest.raises(ValueError):
        EyeDiagram(wave, 10e9, skip_ui=-1)


def test_sampling_phase_near_center():
    m = EyeDiagram.measure_waveform(clean_wave(), 10e9)
    # For symmetric NRZ the best phase is near mid-UI.
    assert 0.2 < m.sampling_phase_ui < 0.8


def test_eye_opening_fraction():
    m = EyeDiagram.measure_waveform(clean_wave(), 10e9)
    assert 0.85 < m.eye_opening_fraction <= 1.0


# -- crossing clusters straddling the 0/1 UI seam ---------------------------

def straddling_wave(wander_ui=0.03, n_bits=64, spb=16):
    """Alternating bits whose edges sit AT the bit boundary, wandering
    +-wander_ui around it: the folded crossing cluster straddles 0/1."""
    encoder = NrzEncoder(bit_rate=10e9, samples_per_bit=spb, amplitude=1.0)
    bits = np.arange(n_bits) % 2
    offsets = np.where(np.arange(n_bits) % 2 == 0, 1.0, -1.0) \
        * wander_ui * 1e-10
    return encoder.encode(bits, edge_offsets=offsets)


def test_straddling_crossing_cluster_is_recentered():
    """Regression: a crossing cluster straddling the 0/1 UI boundary
    whose raw median lands mid-range used to defeat the linear
    re-centering — jitter_pp_ui reported ~1 UI and the eye width
    collapsed to 0 for a clean eye."""
    eye = EyeDiagram(straddling_wave(), 10e9)
    times = eye.crossing_times_ui()
    # Two clusters at ~0.97 and ~0.03 UI fold into one tight cluster.
    assert times.size > 16
    assert np.ptp(times) < 0.2
    assert eye.jitter_pp_ui() < 0.2
    assert eye.eye_width_ui() > 0.8
    # The reported positions still sit on the UI circle near the seam.
    assert np.all(np.abs(np.mod(times + 0.5, 1.0) - 0.5) < 0.1)


def test_straddling_cluster_jitter_matches_injected_wander():
    eye = EyeDiagram(straddling_wave(wander_ui=0.02), 10e9)
    # Deterministic +-0.02 UI wander: peak-to-peak spread ~0.04 UI.
    assert eye.jitter_pp_ui() == pytest.approx(0.04, abs=0.02)


def test_centered_cluster_is_untouched_by_circular_centering():
    """Mid-range clusters (edges away from the seam) keep their raw
    modulo-1 positions — the fix only affects wrapped clusters."""
    wave = clean_wave()
    eye = EyeDiagram(wave, 10e9)
    times = eye.crossing_times_ui()
    raw = None
    flat = eye.traces.reshape(-1)
    sign = np.sign(flat)
    sign[sign == 0] = 1
    idx = np.flatnonzero(np.diff(sign) != 0)
    v0, v1 = flat[idx], flat[idx + 1]
    raw = np.mod((idx + v0 / (v0 - v1)) / eye.samples_per_ui, 1.0)
    if np.ptp(raw) < 0.5:  # genuinely unwrapped cluster
        np.testing.assert_array_equal(times, raw)
