"""Eye-diagram measurement against waveforms with known properties."""

import numpy as np
import pytest

from repro.analysis import EyeDiagram
from repro.signals import RandomJitter, NrzEncoder, bits_to_nrz, prbs7


def clean_wave(amplitude=0.4, n_bits=200, spb=16):
    return bits_to_nrz(prbs7(n_bits), 10e9, amplitude=amplitude,
                       samples_per_bit=spb)


def test_clean_eye_is_wide_open():
    m = EyeDiagram.measure_waveform(clean_wave(), 10e9)
    assert m.is_open
    assert m.eye_height > 0.9 * 0.4
    assert m.eye_width_ui > 0.8
    assert m.eye_amplitude == pytest.approx(0.4, rel=0.02)


def test_levels_of_clean_eye():
    m = EyeDiagram.measure_waveform(clean_wave(), 10e9)
    assert m.level_one == pytest.approx(0.2, rel=0.05)
    assert m.level_zero == pytest.approx(-0.2, rel=0.05)


def test_eye_height_shrinks_with_noise():
    from repro.signals import add_awgn

    clean = clean_wave()
    noisy = add_awgn(clean, 0.02, seed=2)
    m_clean = EyeDiagram.measure_waveform(clean, 10e9)
    m_noisy = EyeDiagram.measure_waveform(noisy, 10e9)
    assert m_noisy.eye_height < m_clean.eye_height
    assert m_noisy.q_factor < m_clean.q_factor


def test_jitter_shrinks_eye_width():
    encoder = NrzEncoder(bit_rate=10e9, samples_per_bit=32, amplitude=0.4)
    bits = prbs7(300)
    clean = encoder.encode(bits)
    jittered = encoder.encode(
        bits, edge_offsets=RandomJitter(3e-12, seed=4).offsets(300, 10e9)
    )
    m_clean = EyeDiagram.measure_waveform(clean, 10e9)
    m_jit = EyeDiagram.measure_waveform(jittered, 10e9)
    assert m_jit.eye_width_ui < m_clean.eye_width_ui
    assert m_jit.jitter_pp > m_clean.jitter_pp


def test_measured_jitter_rms_close_to_injected():
    encoder = NrzEncoder(bit_rate=10e9, samples_per_bit=32, amplitude=0.4,
                         rise_time=10e-12)
    bits = prbs7(500)
    rj = 2e-12
    jittered = encoder.encode(
        bits, edge_offsets=RandomJitter(rj, seed=9).offsets(500, 10e9)
    )
    m = EyeDiagram.measure_waveform(jittered, 10e9)
    assert m.jitter_rms == pytest.approx(rj, rel=0.5)


def test_closed_eye_reports_nonpositive_height():
    from repro.channel import BackplaneChannel

    # A brutal channel at 10 Gb/s: the raw eye closes.
    wave = clean_wave(n_bits=260)
    closed = BackplaneChannel(0.9).process(wave)
    m = EyeDiagram.measure_waveform(closed, 10e9, skip_ui=20)
    assert m.eye_height <= 0.02


def test_non_integer_sample_ratio_is_resampled():
    wave = clean_wave().resampled(150e9)  # 15 samples/UI
    m = EyeDiagram.measure_waveform(wave, 10e9)
    assert m.is_open


def test_two_ui_traces_shape():
    eye = EyeDiagram(clean_wave(n_bits=100, spb=16), 10e9, skip_ui=4)
    traces = eye.two_ui_traces()
    assert traces.shape[1] == 32


def test_degenerate_all_ones_signal():
    wave = bits_to_nrz(np.ones(64, dtype=int), 10e9, samples_per_bit=16)
    m = EyeDiagram.measure_waveform(wave, 10e9)
    assert not m.is_open


def test_eye_requires_enough_ui():
    wave = bits_to_nrz(prbs7(10), 10e9, samples_per_bit=16)
    with pytest.raises(ValueError):
        EyeDiagram(wave, 10e9)


def test_eye_requires_enough_oversampling():
    wave = bits_to_nrz(prbs7(100), 10e9, samples_per_bit=2)
    with pytest.raises(ValueError):
        EyeDiagram(wave, 10e9)


def test_validation():
    wave = clean_wave()
    with pytest.raises(ValueError):
        EyeDiagram(wave, bit_rate=0.0)
    with pytest.raises(ValueError):
        EyeDiagram(wave, 10e9, skip_ui=-1)


def test_sampling_phase_near_center():
    m = EyeDiagram.measure_waveform(clean_wave(), 10e9)
    # For symmetric NRZ the best phase is near mid-UI.
    assert 0.2 < m.sampling_phase_ui < 0.8


def test_eye_opening_fraction():
    m = EyeDiagram.measure_waveform(clean_wave(), 10e9)
    assert 0.85 < m.eye_opening_fraction <= 1.0
