"""Unit helpers and constants."""

import math

import pytest

from repro._units import (
    GIGA,
    MICRO,
    ROOM_TEMPERATURE,
    celsius_to_kelvin,
    db,
    db_power,
    dbm_to_vpp,
    from_db,
    kelvin_to_celsius,
    thermal_voltage,
    vpp_to_dbm,
)


def test_prefix_values():
    assert GIGA == 1e9
    assert MICRO == 1e-6


def test_thermal_voltage_at_room_temperature():
    # kT/q at 300.15 K is ~25.9 mV.
    assert thermal_voltage() == pytest.approx(25.9e-3, rel=0.01)


def test_thermal_voltage_scales_linearly():
    assert thermal_voltage(600.0) == pytest.approx(
        2.0 * thermal_voltage(300.0)
    )


def test_thermal_voltage_rejects_nonpositive():
    with pytest.raises(ValueError):
        thermal_voltage(0.0)


def test_celsius_kelvin_roundtrip():
    assert kelvin_to_celsius(celsius_to_kelvin(27.0)) == pytest.approx(27.0)
    assert ROOM_TEMPERATURE == pytest.approx(celsius_to_kelvin(27.0))


def test_db_and_from_db_are_inverse():
    for ratio in (0.01, 0.5, 1.0, 3.16, 100.0):
        assert from_db(db(ratio)) == pytest.approx(ratio)


def test_db_of_ten_is_twenty():
    assert db(10.0) == pytest.approx(20.0)
    assert db_power(10.0) == pytest.approx(10.0)


def test_db_rejects_nonpositive():
    with pytest.raises(ValueError):
        db(0.0)
    with pytest.raises(ValueError):
        db_power(-1.0)


def test_dbm_conversion_roundtrip():
    for dbm in (-10.0, 0.0, 4.0):
        assert vpp_to_dbm(dbm_to_vpp(dbm)) == pytest.approx(dbm)


def test_zero_dbm_is_632mvpp_into_50ohm():
    assert dbm_to_vpp(0.0) == pytest.approx(0.632, rel=0.01)


def test_vpp_to_dbm_rejects_nonpositive():
    with pytest.raises(ValueError):
        vpp_to_dbm(0.0)


def test_thermal_voltage_monotone_in_temperature():
    temps = [250.0, 300.0, 350.0, 400.0]
    values = [thermal_voltage(t) for t in temps]
    assert values == sorted(values)


def test_db_power_half_is_minus_3db():
    assert db_power(0.5) == pytest.approx(-3.0103, abs=1e-3)
