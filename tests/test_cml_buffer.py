"""The basic wide-band CML buffer (Fig 6) and its three techniques."""

import numpy as np
import pytest

from repro.core import CmlBuffer, ActiveInductorLoad, ResistiveLoad
from repro.core.cml_buffer import apply_active_feedback
from repro.devices import ActiveInductor, MosVaractor, nmos, pmos
from repro.lti import first_order_lowpass
from repro.signals import bits_to_nrz, prbs7


def make_buffer(feedback=1.2, neg_miller=True, rg=1200.0):
    return CmlBuffer(
        input_pair=nmos(20e-6, 0.18e-6, 1e-3),
        load=ActiveInductorLoad(
            ActiveInductor(pmos(40e-6, 0.18e-6, 1e-3), gate_resistance=rg)
        ),
        tail_current=2e-3,
        c_load_ext=54e-15,
        source_resistance=250.0,
        feedback_loop_gain=feedback,
        neg_miller=MosVaractor(4e-6, 0.5e-6) if neg_miller else None,
    )


def test_dc_gain_is_gm_times_rload():
    buf = make_buffer()
    assert buf.dc_gain == pytest.approx(
        buf.input_pair.gm * buf.load.r_dc
    )
    assert buf.small_signal_tf().dc_gain() == pytest.approx(buf.dc_gain,
                                                            rel=1e-6)


def test_output_swing_is_itail_times_rload():
    buf = make_buffer()
    assert buf.output_swing == pytest.approx(2e-3 * buf.load.r_dc)


def test_active_feedback_extends_bandwidth_at_equal_gain():
    # The paper's claim for the M3-M6 network: more bandwidth without
    # giving up DC gain.
    with_fb = make_buffer(feedback=1.2)
    without = make_buffer(feedback=0.0)
    assert with_fb.small_signal_tf().dc_gain() == pytest.approx(
        without.small_signal_tf().dc_gain(), rel=1e-9
    )
    assert with_fb.bandwidth_3db() > 1.25 * without.bandwidth_3db()


def test_neg_miller_extends_bandwidth():
    with_nm = make_buffer(neg_miller=True)
    without = make_buffer(neg_miller=False)
    assert with_nm.input_capacitance < without.input_capacitance
    assert with_nm.bandwidth_3db() > without.bandwidth_3db()


def test_inductive_peaking_extends_bandwidth():
    # Same DC resistance implemented as a plain resistor: less bandwidth.
    buf = make_buffer()
    resistive = buf.with_load(ResistiveLoad(buf.load.r_dc))
    assert buf.bandwidth_3db() > 1.1 * resistive.bandwidth_3db()


def test_pmos_width_trades_gain_for_bandwidth():
    # The Fig 7(b) sweep: wider PMOS -> lower gain, higher bandwidth.
    narrow = make_buffer()
    wide = narrow.with_load(narrow.load.scaled(2.0))
    assert wide.dc_gain < narrow.dc_gain
    assert wide.bandwidth_3db() > narrow.bandwidth_3db()


def test_buffer_limits_at_output_swing():
    buf = make_buffer()
    block = buf.to_block()
    wave = bits_to_nrz(prbs7(60), 10e9, amplitude=2.0, samples_per_bit=16)
    out = block.process(wave)
    # Settled output sits at the I*R swing; inductive peaking may
    # overshoot transiently (that is what peaking *is*), bounded here.
    assert abs(out.data[-1]) == pytest.approx(buf.output_swing, rel=0.05)
    assert out.data.max() <= buf.output_swing * 2.0
    assert out.data.min() >= -buf.output_swing * 2.0


def test_block_linearized_gain_matches_tf():
    buf = make_buffer()
    block = buf.to_block()
    tiny = bits_to_nrz(np.array([1] * 40), 10e9, amplitude=2e-4,
                       samples_per_bit=16)
    out = block.process(tiny)
    assert out.data[-1] / tiny.data[-1] == pytest.approx(buf.dc_gain,
                                                         rel=0.02)


def test_stability():
    assert make_buffer().small_signal_tf().is_stable()
    assert make_buffer(feedback=3.0).small_signal_tf().is_stable()


def test_supply_current_includes_feedback_share():
    assert make_buffer(feedback=0.0).supply_current == pytest.approx(2e-3)
    assert make_buffer(feedback=1.0).supply_current == pytest.approx(2.2e-3)


def test_ablation_helpers():
    buf = make_buffer()
    assert buf.without_feedback().feedback_loop_gain == 0.0
    assert buf.without_neg_miller().neg_miller is None


def test_validation():
    with pytest.raises(ValueError):
        make_buffer(feedback=-1.0)
    pair = nmos(20e-6, 0.18e-6, 1e-3)
    load = ResistiveLoad(100.0)
    with pytest.raises(ValueError):
        CmlBuffer(pair, load, tail_current=0.0)
    with pytest.raises(ValueError):
        CmlBuffer(pair, load, tail_current=1e-3, c_load_ext=-1e-15)
    with pytest.raises(ValueError):
        CmlBuffer(pair, load, tail_current=1e-3, source_resistance=0.0)


# -- apply_active_feedback in isolation -----------------------------------

def test_feedback_zero_is_identity():
    tf = first_order_lowpass(5e9, gain=4.0)
    assert apply_active_feedback(tf, 0.0) is tf


def test_feedback_restores_gain_by_default():
    tf = first_order_lowpass(5e9, gain=4.0)
    closed = apply_active_feedback(tf, 1.0)
    assert closed.dc_gain() == pytest.approx(4.0)


def test_feedback_without_restore_divides_gain():
    tf = first_order_lowpass(5e9, gain=4.0)
    closed = apply_active_feedback(tf, 1.0, restore_gain=False)
    assert closed.dc_gain() == pytest.approx(2.0)


def test_feedback_creates_complex_poles_from_two_real():
    tf = first_order_lowpass(5e9).cascade(first_order_lowpass(5e9))
    closed = apply_active_feedback(tf, 2.0)
    poles = closed.poles()
    assert np.any(np.abs(poles.imag) > 0)


def test_feedback_rejects_negative_loop_gain():
    with pytest.raises(ValueError):
        apply_active_feedback(first_order_lowpass(1e9), -0.5)
