"""Shared fixtures: the paper's default design point and fast stimuli.

Simulation fixtures use modest oversampling (16 samples/bit) and short
PRBS repeats so the whole suite stays fast while still exercising the
full signal paths.
"""

import pytest

from repro import (
    BackplaneChannel,
    bits_to_nrz,
    build_input_interface,
    build_io_interface,
    build_output_interface,
    prbs7,
)

BIT_RATE = 10e9
SAMPLES_PER_BIT = 16
N_BITS = 280


@pytest.fixture(scope="session")
def rx_interface():
    """The paper's input interface (equalizer + limiting amplifier)."""
    return build_input_interface()


@pytest.fixture(scope="session")
def tx_interface():
    """The paper's output interface (driver + voltage peaking)."""
    return build_output_interface()


@pytest.fixture(scope="session")
def io_link():
    """The complete link with a 0.3 m backplane channel."""
    return build_io_interface(channel=BackplaneChannel(0.3))


@pytest.fixture(scope="session")
def channel():
    """A 0.5 m FR-4 backplane (~13 dB at Nyquist)."""
    return BackplaneChannel(0.5)


@pytest.fixture(scope="session")
def prbs_wave():
    """PRBS7 NRZ at 10 Gb/s, 250 mV pp differential."""
    return bits_to_nrz(prbs7(N_BITS), BIT_RATE, amplitude=0.25,
                       samples_per_bit=SAMPLES_PER_BIT)


@pytest.fixture(scope="session")
def small_wave():
    """PRBS7 NRZ at the paper's 4 mV sensitivity point."""
    return bits_to_nrz(prbs7(N_BITS), BIT_RATE, amplitude=0.004,
                       samples_per_bit=SAMPLES_PER_BIT)
