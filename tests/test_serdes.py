"""8b/10b coding and the framed serializer/deserializer link."""

import numpy as np
import pytest

from repro.link import run_framed_link
from repro.serdes import (
    CodingError,
    Decoder8b10b,
    Deserializer,
    Encoder8b10b,
    Serializer,
    align_to_comma,
    decode_bits,
    encode_bytes,
    run_link,
)
from repro.signals import WaveformBatch, add_awgn


def max_run_length(bits):
    best = current = 1
    for a, b in zip(bits, bits[1:]):
        current = current + 1 if a == b else 1
        best = max(best, current)
    return best


# -- 8b/10b -----------------------------------------------------------------

def test_all_bytes_roundtrip_both_disparities():
    decoder = Decoder8b10b()
    for value in range(256):
        for rd in (-1, 1):
            encoder = Encoder8b10b()
            encoder.running_disparity = rd
            bits = encoder.encode_symbol(value)
            assert len(bits) == 10
            decoded, is_control = decoder.decode_symbol(bits)
            assert decoded == value
            assert not is_control


def test_comma_roundtrip():
    decoder = Decoder8b10b()
    for rd in (-1, 1):
        encoder = Encoder8b10b()
        encoder.running_disparity = rd
        bits = encoder.encode_symbol(0xBC, control=True)
        decoded, is_control = decoder.decode_symbol(bits)
        assert decoded == 0xBC
        assert is_control


def test_stream_roundtrip_random_payload():
    rng = np.random.default_rng(7)
    payload = bytes(rng.integers(0, 256, 300).tolist())
    assert decode_bits(encode_bytes(payload)) == payload


def test_run_length_bounded():
    # The code's reason to exist: max run of 5 even for worst payloads.
    for payload in (b"\x00" * 64, b"\xff" * 64, bytes(range(256))):
        bits = encode_bytes(payload)
        assert max_run_length(bits.tolist()) <= 5


def test_dc_balance():
    rng = np.random.default_rng(3)
    payload = bytes(rng.integers(0, 256, 500).tolist())
    bits = encode_bytes(payload)
    assert abs(float(bits.mean()) - 0.5) < 0.01
    disparity = np.cumsum(2 * bits.astype(int) - 1)
    assert np.max(np.abs(disparity)) <= 6


def test_invalid_group_detected():
    decoder = Decoder8b10b()
    with pytest.raises(CodingError):
        decoder.decode_symbol(np.ones(10, dtype=np.int8))  # run of 10


def test_encoder_validation():
    encoder = Encoder8b10b()
    with pytest.raises(CodingError):
        encoder.encode_symbol(300)
    with pytest.raises(CodingError):
        encoder.encode_symbol(0x00, control=True)  # only K28.5


def test_decoder_validation():
    with pytest.raises(CodingError):
        Decoder8b10b().decode_symbol(np.zeros(8, dtype=np.int8))
    with pytest.raises(CodingError):
        decode_bits(np.zeros(15, dtype=np.int8))


# -- alignment --------------------------------------------------------------

def test_comma_found_at_any_offset():
    bits = encode_bytes(b"\x11\x22\x33", prepend_commas=1)
    for shift in (0, 3, 7):
        padded = np.concatenate([np.zeros(shift, dtype=np.int8), bits])
        offset = align_to_comma(padded)
        assert offset == shift


def test_no_comma_returns_none():
    assert align_to_comma(np.zeros(50, dtype=np.int8)) is None
    assert align_to_comma(np.zeros(50, dtype=np.int8), last=True) is None
    assert align_to_comma(np.zeros(5, dtype=np.int8)) is None


def test_align_to_comma_first_vs_last():
    # Two comma bursts separated by data: first/last must land on the
    # first symbol of each respective burst.
    encoder = Encoder8b10b()
    first_burst = encoder.encode(b"\x11\x22", prepend_commas=2)
    second = encoder.encode_symbol(0xBC, control=True)
    stream = np.concatenate([np.zeros(7, dtype=np.int8), first_burst,
                             second, np.ones(4, dtype=np.int8)])
    assert align_to_comma(stream) == 7
    assert align_to_comma(stream, last=True) == 7 + len(first_burst)


def test_deserializer_aligns_and_decodes():
    payload = b"hello, backplane"
    bits = encode_bytes(payload, prepend_commas=3)
    # Simulate unknown CDR latency: prepend garbage bits.
    stream = np.concatenate([np.array([0, 1, 0, 1, 1], dtype=np.int8),
                             bits])
    assert Deserializer().deserialize(stream) == payload


def test_deserializer_both_comma_modes_on_clean_preamble():
    # With a single preamble burst the two alignment strategies agree:
    # burst-walk from the first comma and global last comma land on the
    # same symbol boundary.
    payload = b"comma modes"
    bits = encode_bytes(payload, prepend_commas=4)
    stream = np.concatenate([np.array([1, 0, 1], dtype=np.int8), bits])
    assert Deserializer().deserialize(stream) == payload
    assert Deserializer(use_last_comma=True).deserialize(stream) == payload


def test_deserializer_last_comma_mode_skips_mangled_preamble():
    # Corrupt three consecutive preamble symbols — more than the
    # burst-walk's 3-group lookahead tolerates — so the default mode
    # stops inside the preamble while the last-comma mode still lands
    # on the final comma and recovers the payload.
    payload = b"\x42\x43\x44\x45"
    bits = encode_bytes(payload, prepend_commas=12).copy()
    bits[30:60] = 0  # symbols 3, 4, 5 of the burst
    assert Deserializer(use_last_comma=True).deserialize(bits) == payload
    assert Deserializer().deserialize(bits) != payload


def test_deserializer_without_comma_raises():
    with pytest.raises(CodingError):
        Deserializer().deserialize(np.zeros(100, dtype=np.int8))
    with pytest.raises(CodingError):
        Deserializer(use_last_comma=True).deserialize(
            np.zeros(100, dtype=np.int8))


# -- full framed link ---------------------------------------------------------

def test_serializer_waveform_properties():
    serializer = Serializer(bit_rate=10e9, samples_per_bit=16,
                            amplitude=0.25)
    wave = serializer.serialize(b"\xaa\x55")
    assert wave.sample_rate == pytest.approx(160e9)
    assert wave.peak_to_peak() == pytest.approx(0.25, rel=0.05)
    assert serializer.line_rate_overhead == pytest.approx(1.25)
    with pytest.raises(ValueError):
        serializer.serialize(b"")


def test_link_error_free_over_ideal_path():
    report = run_link(b"0123456789abcdef" * 4, analog_path=lambda w: w)
    assert report.cdr_locked
    assert report.error_free
    assert report.byte_errors == 0


def test_link_error_free_through_receiver_and_channel():
    from repro.channel import BackplaneChannel
    from repro.core import build_input_interface

    rx = build_input_interface(equalizer_control_voltage=0.6)
    channel = BackplaneChannel(0.3)

    report = run_link(bytes(range(100)),
                      analog_path=lambda w: rx.process(channel.process(w)))
    assert report.cdr_locked
    assert report.error_free
    assert report.recovered_jitter_ui < 0.1


def test_link_fails_gracefully_when_eye_closed():
    from repro.channel import BackplaneChannel

    # A destroyed channel: the CDR may lock onto garbage but the
    # decoder's error detection reports the payload as corrupt.
    brutal = BackplaneChannel(1.5)
    report = run_link(bytes(range(60)), analog_path=brutal.process)
    assert not report.error_free


def test_link_last_comma_mode_end_to_end():
    report = run_link(b"last comma framing", analog_path=lambda w: w,
                      use_last_comma=True)
    assert report.cdr_locked
    assert report.error_free
    assert report.cdr_slips == 0


# -- batched framed link ------------------------------------------------------

def test_link_batch_rows_match_serial_run_link():
    payload = b"0123456789abcdef" * 2
    seeds = [1, 2, 3, 4]
    rms = 0.01
    batch_report = run_framed_link(
        payload,
        path=lambda w: WaveformBatch.with_noise_seeds(w, rms, seeds),
        training_commas=24, training_bytes=4,
    )
    assert batch_report.n_scenarios == len(seeds)
    for seed, from_batch in zip(seeds, batch_report):
        reference = run_link(
            payload,
            analog_path=lambda w, seed=seed: add_awgn(w, rms, seed=seed),
            training_commas=24, training_bytes=4,
        )
        assert from_batch.payload_received == reference.payload_received
        assert from_batch.cdr_locked == reference.cdr_locked
        assert from_batch.cdr_slips == reference.cdr_slips
        assert from_batch.recovered_jitter_ui == \
            reference.recovered_jitter_ui
    assert batch_report.frame_error_rate() == 0.0
    assert batch_report.lock_yield() == 1.0


def test_link_batch_through_batch_transparent_receiver():
    from repro.core import build_input_interface

    rx = build_input_interface(equalizer_control_voltage=0.6)
    report = run_framed_link(
        bytes(range(40)),
        path=lambda w: rx.process(
            WaveformBatch.tiled(w * 0.04, 3)),
        training_commas=24, training_bytes=4,
    )
    assert report.n_scenarios == 3
    assert report.lock_yield() == 1.0
    assert report.frame_error_rate() == 0.0
    assert np.all(report.slips() == 0)


def test_framed_link_dispatches_single_waveform_and_rejects_junk():
    report = run_framed_link(b"single row", path=lambda w: w)
    assert report.error_free                  # waveform path: LinkReport
    with pytest.raises(TypeError):
        run_framed_link(b"junk", path=lambda w: w.data)
