"""8b/10b coding and the framed serializer/deserializer link."""

import numpy as np
import pytest

from repro.serdes import (
    CodingError,
    Decoder8b10b,
    Deserializer,
    Encoder8b10b,
    Serializer,
    align_to_comma,
    decode_bits,
    encode_bytes,
    run_link,
)


def max_run_length(bits):
    best = current = 1
    for a, b in zip(bits, bits[1:]):
        current = current + 1 if a == b else 1
        best = max(best, current)
    return best


# -- 8b/10b -----------------------------------------------------------------

def test_all_bytes_roundtrip_both_disparities():
    decoder = Decoder8b10b()
    for value in range(256):
        for rd in (-1, 1):
            encoder = Encoder8b10b()
            encoder.running_disparity = rd
            bits = encoder.encode_symbol(value)
            assert len(bits) == 10
            decoded, is_control = decoder.decode_symbol(bits)
            assert decoded == value
            assert not is_control


def test_comma_roundtrip():
    decoder = Decoder8b10b()
    for rd in (-1, 1):
        encoder = Encoder8b10b()
        encoder.running_disparity = rd
        bits = encoder.encode_symbol(0xBC, control=True)
        decoded, is_control = decoder.decode_symbol(bits)
        assert decoded == 0xBC
        assert is_control


def test_stream_roundtrip_random_payload():
    rng = np.random.default_rng(7)
    payload = bytes(rng.integers(0, 256, 300).tolist())
    assert decode_bits(encode_bytes(payload)) == payload


def test_run_length_bounded():
    # The code's reason to exist: max run of 5 even for worst payloads.
    for payload in (b"\x00" * 64, b"\xff" * 64, bytes(range(256))):
        bits = encode_bytes(payload)
        assert max_run_length(bits.tolist()) <= 5


def test_dc_balance():
    rng = np.random.default_rng(3)
    payload = bytes(rng.integers(0, 256, 500).tolist())
    bits = encode_bytes(payload)
    assert abs(float(bits.mean()) - 0.5) < 0.01
    disparity = np.cumsum(2 * bits.astype(int) - 1)
    assert np.max(np.abs(disparity)) <= 6


def test_invalid_group_detected():
    decoder = Decoder8b10b()
    with pytest.raises(CodingError):
        decoder.decode_symbol(np.ones(10, dtype=np.int8))  # run of 10


def test_encoder_validation():
    encoder = Encoder8b10b()
    with pytest.raises(CodingError):
        encoder.encode_symbol(300)
    with pytest.raises(CodingError):
        encoder.encode_symbol(0x00, control=True)  # only K28.5


def test_decoder_validation():
    with pytest.raises(CodingError):
        Decoder8b10b().decode_symbol(np.zeros(8, dtype=np.int8))
    with pytest.raises(CodingError):
        decode_bits(np.zeros(15, dtype=np.int8))


# -- alignment --------------------------------------------------------------

def test_comma_found_at_any_offset():
    bits = encode_bytes(b"\x11\x22\x33", prepend_commas=1)
    for shift in (0, 3, 7):
        padded = np.concatenate([np.zeros(shift, dtype=np.int8), bits])
        offset = align_to_comma(padded)
        assert offset == shift


def test_no_comma_returns_none():
    assert align_to_comma(np.zeros(50, dtype=np.int8)) is None


def test_deserializer_aligns_and_decodes():
    payload = b"hello, backplane"
    bits = encode_bytes(payload, prepend_commas=3)
    # Simulate unknown CDR latency: prepend garbage bits.
    stream = np.concatenate([np.array([0, 1, 0, 1, 1], dtype=np.int8),
                             bits])
    assert Deserializer().deserialize(stream) == payload


def test_deserializer_without_comma_raises():
    with pytest.raises(CodingError):
        Deserializer().deserialize(np.zeros(100, dtype=np.int8))


# -- full framed link ---------------------------------------------------------

def test_serializer_waveform_properties():
    serializer = Serializer(bit_rate=10e9, samples_per_bit=16,
                            amplitude=0.25)
    wave = serializer.serialize(b"\xaa\x55")
    assert wave.sample_rate == pytest.approx(160e9)
    assert wave.peak_to_peak() == pytest.approx(0.25, rel=0.05)
    assert serializer.line_rate_overhead == pytest.approx(1.25)
    with pytest.raises(ValueError):
        serializer.serialize(b"")


def test_link_error_free_over_ideal_path():
    report = run_link(b"0123456789abcdef" * 4, analog_path=lambda w: w)
    assert report.cdr_locked
    assert report.error_free
    assert report.byte_errors == 0


def test_link_error_free_through_receiver_and_channel():
    from repro.channel import BackplaneChannel
    from repro.core import build_input_interface

    rx = build_input_interface(equalizer_control_voltage=0.6)
    channel = BackplaneChannel(0.3)

    report = run_link(bytes(range(100)),
                      analog_path=lambda w: rx.process(channel.process(w)))
    assert report.cdr_locked
    assert report.error_free
    assert report.recovered_jitter_ui < 0.1


def test_link_fails_gracefully_when_eye_closed():
    from repro.channel import BackplaneChannel

    # A destroyed channel: the CDR may lock onto garbage but the
    # decoder's error detection reports the payload as corrupt.
    brutal = BackplaneChannel(1.5)
    report = run_link(bytes(range(60)), analog_path=brutal.process)
    assert not report.error_free
