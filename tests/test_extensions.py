"""Extension modules: digital pre-emphasis baseline, jitter
decomposition, mismatch Monte Carlo, channel fitting."""

import numpy as np
import pytest

from repro.baselines import (
    FirPreEmphasis,
    taps_equivalent_to_peaking,
    zero_forcing_taps,
)
from repro.analysis import (
    EyeDiagram,
    decompose_crossings,
    decompose_jitter,
)
from repro.channel import (
    BackplaneChannel,
    fit_channel,
    fit_channel_parameters,
    format_s21_text,
    parse_s21_text,
)
from repro.devices import (
    MismatchModel,
    chain_offset_sigma,
    nmos,
    pair_offset_sigma,
    sample_offsets,
)
from repro.signals import (
    NrzEncoder,
    RandomJitter,
    SinusoidalJitter,
    bits_to_nrz,
    prbs7,
)

BIT_RATE = 10e9


# -- digital pre-emphasis ----------------------------------------------------

def test_fir_two_tap_boosts_edges():
    fir = FirPreEmphasis(taps=(1.2, -0.2), bit_rate=BIT_RATE)
    wave = bits_to_nrz(np.tile([1, 1, 1, 0, 0, 0], 10), BIT_RATE,
                       amplitude=0.2, samples_per_bit=16)
    out = fir.process(wave)
    # Edge boosted above the settled level.
    assert out.peak_to_peak() > 1.15 * wave.peak_to_peak()
    assert fir.boost_db() > 2.0


def test_fir_identity_tap():
    fir = FirPreEmphasis(taps=(1.0,), bit_rate=BIT_RATE)
    wave = bits_to_nrz(prbs7(60), BIT_RATE, samples_per_bit=16)
    np.testing.assert_allclose(fir.process(wave).data, wave.data)


def test_fir_normalization_preserves_peak_power():
    fir = FirPreEmphasis(taps=(1.0, -0.25), bit_rate=BIT_RATE,
                         normalize=True)
    assert np.sum(np.abs(fir.taps)) == pytest.approx(1.0)


def test_fir_validation():
    with pytest.raises(ValueError):
        FirPreEmphasis(taps=(), bit_rate=BIT_RATE)
    with pytest.raises(ValueError):
        FirPreEmphasis(taps=(0.0, 1.0), bit_rate=BIT_RATE)
    with pytest.raises(ValueError):
        FirPreEmphasis(taps=(1.0,), bit_rate=0.0)
    with pytest.raises(ValueError):
        FirPreEmphasis(taps=(1.0, -1.0), bit_rate=BIT_RATE).boost_db()


def test_zero_forcing_improves_channel_eye():
    channel = BackplaneChannel(0.5)
    taps = zero_forcing_taps(channel, BIT_RATE, n_taps=3)
    assert taps[0] > 0
    assert taps[1] < 0  # first post-tap fights the dominant post-cursor
    fir = FirPreEmphasis(taps=taps, bit_rate=BIT_RATE)
    wave = bits_to_nrz(prbs7(260), BIT_RATE, amplitude=0.3,
                       samples_per_bit=16)
    plain = channel.process(wave)
    shaped = channel.process(fir.process(wave))
    m_plain = EyeDiagram.measure_waveform(plain, BIT_RATE, skip_ui=16)
    m_shaped = EyeDiagram.measure_waveform(shaped, BIT_RATE, skip_ui=16)
    assert m_shaped.eye_height > 1.2 * m_plain.eye_height


def test_equivalence_with_analog_peaking():
    taps = taps_equivalent_to_peaking(spike_height=37.5e-3,
                                      signal_amplitude=0.1)
    assert taps[0] == pytest.approx(1.1875)
    assert taps[1] == pytest.approx(-0.1875)
    with pytest.raises(ValueError):
        taps_equivalent_to_peaking(0.01, 0.0)


def test_zero_forcing_validation():
    with pytest.raises(ValueError):
        zero_forcing_taps(BackplaneChannel(0.5), BIT_RATE, n_taps=1)


# -- jitter decomposition ------------------------------------------------------

def test_decompose_pure_rj():
    encoder = NrzEncoder(bit_rate=BIT_RATE, samples_per_bit=32,
                         amplitude=0.4, rise_time=10e-12)
    rj_injected = 2e-12
    bits = prbs7(800)
    wave = encoder.encode(
        bits, edge_offsets=RandomJitter(rj_injected, seed=5).offsets(
            800, BIT_RATE)
    )
    decomposition = decompose_jitter(wave, BIT_RATE)
    assert decomposition.rj_rms == pytest.approx(rj_injected, rel=0.6)
    assert decomposition.dj_pp < 2.5 * rj_injected


def test_decompose_dominant_dj():
    encoder = NrzEncoder(bit_rate=BIT_RATE, samples_per_bit=32,
                         amplitude=0.4, rise_time=10e-12)
    bits = prbs7(800)
    sj = SinusoidalJitter(peak_seconds=5e-12, frequency=97e6)
    rj = RandomJitter(0.5e-12, seed=6)
    offsets = sj.offsets(800, BIT_RATE) + rj.offsets(800, BIT_RATE)
    wave = encoder.encode(bits, edge_offsets=offsets)
    decomposition = decompose_jitter(wave, BIT_RATE)
    # DJ (10 ps pp injected) must dominate the RJ estimate.
    assert decomposition.dj_pp > 3 * decomposition.rj_rms
    assert decomposition.dj_pp > 4e-12


def test_total_jitter_monotone_in_ber():
    decomposition = decompose_crossings(
        np.random.default_rng(1).normal(0, 1e-12, 500)
    )
    assert decomposition.total_jitter(1e-15) > decomposition.total_jitter(
        1e-9
    )
    with pytest.raises(ValueError):
        decomposition.total_jitter(0.9)


def test_decompose_validation():
    with pytest.raises(ValueError):
        decompose_crossings(np.zeros(10))
    with pytest.raises(ValueError):
        decompose_crossings(np.zeros(100), tail_fraction=0.5)


def test_eye_closure_ui():
    decomposition = decompose_crossings(
        np.random.default_rng(2).normal(0, 1e-12, 500)
    )
    closure = decomposition.eye_closure_ui(BIT_RATE)
    assert 0 < closure < 1.0
    with pytest.raises(ValueError):
        decomposition.eye_closure_ui(0.0)


# -- mismatch --------------------------------------------------------------

def test_pelgrom_area_law():
    model = MismatchModel()
    small = nmos(5e-6, 0.18e-6, 1e-3)
    large = nmos(20e-6, 0.72e-6, 1e-3)
    # 16x the area -> 4x smaller sigma.
    assert model.vth_sigma(small) == pytest.approx(
        4 * model.vth_sigma(large), rel=1e-6
    )


def test_pair_offset_millivolt_scale():
    # A 20 um x 0.18 um pair in 0.18 um: a few mV of sigma — exactly
    # the "can become a problem after three stages" regime.
    sigma = pair_offset_sigma(nmos(20e-6, 0.18e-6, 1e-3))
    assert 1e-3 < sigma < 5e-3


def test_chain_offset_dominated_by_first_stage():
    pairs = [nmos(20e-6, 0.18e-6, 1e-3)] * 3
    gains = [3.0, 3.0, 3.0]
    chain = chain_offset_sigma(pairs, gains)
    first = pair_offset_sigma(pairs[0])
    assert first < chain < 1.2 * first


def test_chain_offset_validation():
    with pytest.raises(ValueError):
        chain_offset_sigma([], [])
    with pytest.raises(ValueError):
        chain_offset_sigma([nmos(20e-6, 0.18e-6, 1e-3)], [2.0, 2.0])


def test_sample_offsets_statistics():
    samples = sample_offsets(2e-3, 20000, seed=4)
    assert np.std(samples) == pytest.approx(2e-3, rel=0.05)
    assert abs(np.mean(samples)) < 1e-4
    with pytest.raises(ValueError):
        sample_offsets(-1.0, 10)
    with pytest.raises(ValueError):
        sample_offsets(1e-3, 0)


def test_mismatch_model_validation():
    with pytest.raises(ValueError):
        MismatchModel(a_vt=0.0)


# -- channel fitting -----------------------------------------------------------

def test_fit_recovers_known_parameters():
    truth = BackplaneChannel(1.0)
    freqs = np.linspace(0.5e9, 10e9, 40)
    loss = truth.loss_db(freqs)
    params = fit_channel_parameters(freqs, loss, length_m=1.0)
    assert params.k_skin == pytest.approx(truth.params.k_skin, rel=0.05)
    assert params.k_dielectric == pytest.approx(
        truth.params.k_dielectric, rel=0.05
    )


def test_fit_channel_reproduces_loss():
    truth = BackplaneChannel(0.5)
    freqs = np.linspace(1e9, 8e9, 20)
    fitted = fit_channel(freqs, truth.loss_db(freqs), length_m=0.5)
    np.testing.assert_allclose(fitted.loss_db(freqs),
                               truth.loss_db(freqs), rtol=0.05)


def test_s21_text_roundtrip():
    channel = BackplaneChannel(0.5)
    freqs = np.linspace(1e9, 10e9, 10)
    text = format_s21_text(channel, freqs)
    parsed_freqs, parsed_loss = parse_s21_text(text)
    np.testing.assert_allclose(parsed_freqs, freqs)
    np.testing.assert_allclose(parsed_loss, channel.loss_db(freqs),
                               atol=1e-3)
    # Fit from the exported trace reproduces the channel.
    refit = fit_channel(parsed_freqs, parsed_loss, length_m=0.5)
    assert refit.nyquist_loss_db(10e9) == pytest.approx(
        channel.nyquist_loss_db(10e9), rel=0.02
    )


def test_parse_skips_comments():
    text = "! comment\n# HZ S DB R 50\n1e9 -3.0\n2e9 -5.0\n"
    freqs, loss = parse_s21_text(text)
    np.testing.assert_allclose(freqs, [1e9, 2e9])
    np.testing.assert_allclose(loss, [3.0, 5.0])


def test_fitting_validation():
    with pytest.raises(ValueError):
        fit_channel_parameters(np.array([1e9]), np.array([1.0]))
    with pytest.raises(ValueError):
        fit_channel_parameters(np.array([1e9, -2e9]),
                               np.array([1.0, 2.0]))
    with pytest.raises(ValueError):
        fit_channel_parameters(np.array([1e9, 2e9]),
                               np.array([1.0, -2.0]))
    with pytest.raises(ValueError):
        parse_s21_text("! nothing\n")
    with pytest.raises(ValueError):
        parse_s21_text("1e9\n2e9 -1\n3e9 -2\n")
