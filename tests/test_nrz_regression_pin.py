"""Pinned NRZ regression: the modulation refactor is bit-exact.

Every reference function in this file is an inline frozen copy of the
*pre-refactor* algorithm (the hardcoded two-level code paths: the NRZ
``(bits - 0.5) * amplitude`` encoder, the ``value > 0`` DFE sign
slicer with ``+-A`` feedback, the sign-sliced Alexander CDR, the
threshold-0 eye clusters).  The tests assert the modulation-aware
paths reproduce them bit for bit on NRZ defaults — through the serial
references, every importable kernel backend, ``run_batch``, and a
checkpoint-resumed chunked sweep.
"""

import numpy as np
import pytest

from repro import kernels
from repro.analysis.eye import EyeDiagramBatch
from repro.baselines import DecisionFeedbackEqualizer
from repro.cdr import BangBangCdr, CdrConfig
from repro.cdr.phase_detector import vote_step
from repro.link import ChannelConfig, DfeConfig, LinkSession, TxConfig
from repro.signals import (
    NrzEncoder,
    RandomJitter,
    WaveformBatch,
    add_awgn,
    prbs7,
)
from repro.signals.waveform import Waveform, sample_uniform
from repro.sweep import ScenarioGrid, SweepAxis

BIT_RATE = 10e9
BACKENDS = kernels.available_backends()


# ---------------------------------------------------------------------------
# Frozen pre-refactor reference implementations.
# ---------------------------------------------------------------------------

def _old_nrz_encode(bits, bit_rate, samples_per_bit, amplitude, rise_time,
                    edge_offsets=None):
    """The pre-refactor NrzEncoder.encode, verbatim."""
    bits = np.asarray(bits)
    levels = (bits.astype(float) - 0.5) * amplitude
    n_samples = len(bits) * samples_per_bit
    sample_rate = bit_rate * samples_per_bit
    times = np.arange(n_samples) / sample_rate
    bit_period = 1.0 / bit_rate
    edge_times = np.arange(len(bits)) * bit_period
    if edge_offsets is not None:
        edge_times = edge_times + np.asarray(edge_offsets, dtype=float)
    if rise_time <= 0.0:
        edge_index = np.searchsorted(edge_times, times, side="right") - 1
        data = levels[np.clip(edge_index, 0, len(bits) - 1)]
    else:
        tau = rise_time / (2.0 * np.arctanh(0.6))
        data = np.full(n_samples, levels[0])
        for k in range(1, len(bits)):
            step = levels[k] - levels[k - 1]
            if step != 0.0:
                data = data + step * 0.5 * (
                    1.0 + np.tanh((times - edge_times[k]) / tau))
    return Waveform(data, sample_rate)


def _old_dfe_equalize(wave, taps, bit_rate, decision_amplitude,
                      sample_phase_ui):
    """The pre-refactor serial DFE loop: sign slicer, +-A feedback."""
    taps = np.asarray(taps, dtype=float)
    ui_samples = wave.sample_rate / bit_rate
    n_bits = int(np.floor((len(wave) - 1) / ui_samples
                          - sample_phase_ui)) + 1
    decisions = np.zeros(n_bits, dtype=np.int8)
    corrected = np.zeros(n_bits)
    history = np.zeros(len(taps))
    data = wave.data
    for k in range(n_bits):
        index = (k + sample_phase_ui) * ui_samples
        raw = float(sample_uniform(data, 0.0, 1.0, index))
        feedback = 0.0
        for weight, past in zip(taps, history):
            feedback += weight * past
        value = raw - feedback
        corrected[k] = value
        bit = 1 if value > 0 else 0
        decisions[k] = bit
        history = np.roll(history, 1)
        history[0] = decision_amplitude if bit else -decision_amplitude
    return decisions, corrected


def _old_inner_eye_height(corrected, skip_bits=16):
    """The pre-refactor binary inner-eye metric."""
    usable = np.asarray(corrected, dtype=float)[..., skip_bits:]
    if usable.shape[-1] == 0:
        return np.full(usable.shape[:-1], -np.inf)
    ones = usable > 0
    upper = np.where(ones, usable, np.inf).min(axis=-1)
    lower = np.where(~ones, usable, -np.inf).max(axis=-1)
    valid = ones.any(axis=-1) & (~ones).any(axis=-1)
    return np.where(valid, upper - lower, -np.inf)


def _old_cdr_recover(wave, config, n_bits=None):
    """The pre-refactor serial bang-bang loop: sign-sliced decisions,
    raw-sample Alexander votes."""
    ui = 1.0 / config.bit_rate
    total_bits = int(wave.duration / ui) - 2
    if n_bits is not None:
        total_bits = min(total_bits, n_bits)
    data, t0, sample_rate = wave.data, wave.t0, wave.sample_rate
    t_last = wave.time[-1]
    phase = config.initial_phase_ui
    integral = config.initial_frequency_ppm * 1e-6
    bit_offset = 0
    slips = 0
    decisions = np.zeros(total_bits, dtype=np.int8)
    phases = np.empty(total_bits)
    votes = np.zeros(total_bits, dtype=np.int8)
    previous_data = previous_edge = None
    for k in range(total_bits):
        t_data = (k + 0.5 + bit_offset + phase) * ui
        t_edge = (k + 1.0 + bit_offset + phase) * ui
        if t_edge >= t_last:
            decisions, phases, votes = decisions[:k], phases[:k], votes[:k]
            break
        sample_data = float(sample_uniform(data, t0, sample_rate, t_data))
        sample_edge = float(sample_uniform(data, t0, sample_rate, t_edge))
        decisions[k] = 1 if sample_data > 0 else 0
        phases[k] = phase
        if previous_data is not None:
            vote = int(vote_step(np.array([previous_data]),
                                 np.array([previous_edge]),
                                 np.array([sample_data]))[0])
            votes[k] = vote
            integral = integral + config.ki * vote
            phase = phase + (config.kp * vote + integral)
            if phase > 1.0:
                phase -= 1.0
                bit_offset += 1
                slips += 1
            elif phase < -1.0:
                phase += 1.0
                bit_offset -= 1
                slips -= 1
        previous_data = sample_data
        previous_edge = sample_edge
    return decisions, phases, votes, slips


def make_batch(n_scenarios=6, n_bits=240, samples_per_bit=8):
    encoder = NrzEncoder(bit_rate=BIT_RATE, samples_per_bit=samples_per_bit,
                         amplitude=0.4)
    bits = prbs7(n_bits)
    waves = []
    for seed in range(1, n_scenarios + 1):
        jitter = RandomJitter(3e-12, seed=seed)
        wave = encoder.encode(bits,
                              edge_offsets=jitter.offsets(n_bits, BIT_RATE))
        waves.append(add_awgn(wave, rms_volts=0.02, seed=seed))
    return WaveformBatch.stack(waves)


# ---------------------------------------------------------------------------
# Encoder pin.
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("rise_time", [0.0, 15e-12, 40e-12])
def test_encoder_bit_exact_vs_pre_refactor(rise_time):
    rng = np.random.default_rng(21)
    bits = rng.integers(0, 2, 100)
    offsets = RandomJitter(2e-12, seed=4).offsets(len(bits), BIT_RATE)
    for offs in (None, offsets):
        old = _old_nrz_encode(bits, BIT_RATE, 16, 0.4, rise_time, offs)
        new = NrzEncoder(bit_rate=BIT_RATE, samples_per_bit=16,
                         amplitude=0.4,
                         rise_time=rise_time).encode(bits, edge_offsets=offs)
        np.testing.assert_array_equal(old.data, new.data)
        assert old.sample_rate == new.sample_rate


# ---------------------------------------------------------------------------
# DFE pin: serial + every backend.
# ---------------------------------------------------------------------------

def test_dfe_serial_bit_exact_vs_sign_slicer():
    batch = make_batch()
    dfe = DecisionFeedbackEqualizer(taps=(0.08, 0.03), bit_rate=BIT_RATE,
                                    decision_amplitude=0.2)
    for i in range(batch.n_scenarios):
        wave = batch[i]
        old_dec, old_corr = _old_dfe_equalize(
            wave, dfe.taps, BIT_RATE, 0.2, dfe.sample_phase_ui)
        new_dec, new_corr = dfe.equalize(wave)
        np.testing.assert_array_equal(old_dec, new_dec)
        np.testing.assert_array_equal(old_corr, new_corr)
        assert dfe.inner_eye_height(wave) == float(
            _old_inner_eye_height(old_corr))


@pytest.mark.parametrize("backend", BACKENDS)
def test_dfe_batch_bit_exact_per_backend(backend):
    batch = make_batch()
    dfe = DecisionFeedbackEqualizer(taps=(0.08, 0.03), bit_rate=BIT_RATE,
                                    decision_amplitude=0.2)
    with kernels.use_backend(backend):
        decisions, corrected = dfe._equalize_batch(batch)
    for i in range(batch.n_scenarios):
        old_dec, old_corr = _old_dfe_equalize(
            batch[i], dfe.taps, BIT_RATE, 0.2, dfe.sample_phase_ui)
        np.testing.assert_array_equal(decisions[i], old_dec)
        np.testing.assert_array_equal(corrected[i], old_corr)


# ---------------------------------------------------------------------------
# CDR pin: serial + every backend.
# ---------------------------------------------------------------------------

def test_cdr_serial_bit_exact_vs_sign_slicer():
    batch = make_batch()
    config = CdrConfig(bit_rate=BIT_RATE, initial_phase_ui=0.25)
    cdr = BangBangCdr(config)
    for i in range(batch.n_scenarios):
        old_dec, old_phases, old_votes, old_slips = _old_cdr_recover(
            batch[i], config)
        result = cdr.recover(batch[i])
        np.testing.assert_array_equal(result.decisions, old_dec)
        np.testing.assert_array_equal(result.phase_track_ui, old_phases)
        np.testing.assert_array_equal(result.votes, old_votes)
        assert result.slips == old_slips


@pytest.mark.parametrize("backend", BACKENDS)
def test_cdr_batch_bit_exact_per_backend(backend):
    batch = make_batch()
    config = CdrConfig(bit_rate=BIT_RATE, initial_phase_ui=0.25)
    with kernels.use_backend(backend):
        result = BangBangCdr(config)._recover_batch(batch)
    for i in range(batch.n_scenarios):
        old_dec, old_phases, old_votes, old_slips = _old_cdr_recover(
            batch[i], config)
        row = result.row(i)
        np.testing.assert_array_equal(row.decisions, old_dec)
        np.testing.assert_array_equal(row.phase_track_ui, old_phases)
        np.testing.assert_array_equal(row.votes, old_votes)
        assert row.slips == old_slips


# ---------------------------------------------------------------------------
# Eye pin: NRZ decision thresholds are exactly zero, clusters unchanged.
# ---------------------------------------------------------------------------

def test_nrz_eye_thresholds_exactly_zero():
    batch = make_batch()
    eye_batch = EyeDiagramBatch(batch, BIT_RATE, skip_ui=8)
    thresholds = eye_batch.decision_thresholds()
    assert thresholds.shape == (batch.n_scenarios, 1)
    assert np.all(thresholds == 0.0)


def test_nrz_eye_heights_match_threshold_zero_clusters():
    batch = make_batch()
    eye_batch = EyeDiagramBatch(batch, BIT_RATE, skip_ui=8)
    heights = eye_batch.eye_heights()
    traces = eye_batch.traces
    # Pre-refactor vertical metric, per (scenario, phase):
    # min(ones) - max(zeros) over the >0 / <=0 clusters.
    ones = traces > 0
    upper = np.where(ones, traces, np.inf).min(axis=1)
    lower = np.where(~ones, traces, -np.inf).max(axis=1)
    valid = ones.any(axis=1) & (~ones).any(axis=1)
    per_phase = np.where(valid, upper - lower, -np.inf)
    np.testing.assert_array_equal(heights, per_phase)


# ---------------------------------------------------------------------------
# Facade pin: run_batch and a checkpoint-resumed chunked sweep.
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("backend", BACKENDS)
def test_run_batch_bit_exact_vs_pre_refactor(backend):
    batch = make_batch()
    session = LinkSession(
        [], bit_rate=BIT_RATE, cdr=CdrConfig(bit_rate=BIT_RATE),
        dfe=DfeConfig(taps=(0.08,), decision_amplitude=0.2))
    with kernels.use_backend(backend):
        result = session.run_batch(batch)
    dfe = session.dfe
    config = session.cdr_config
    for i in range(batch.n_scenarios):
        old_dec, old_corr = _old_dfe_equalize(
            batch[i], dfe.taps, BIT_RATE, 0.2, dfe.sample_phase_ui)
        np.testing.assert_array_equal(result.dfe_decisions[i], old_dec)
        np.testing.assert_array_equal(result.dfe_corrected[i], old_corr)
        assert result.dfe_inner_eye_heights[i] == float(
            _old_inner_eye_height(old_corr))
        cdr_dec, cdr_phases, _, _ = _old_cdr_recover(batch[i], config)
        row = result.cdr.row(i)
        np.testing.assert_array_equal(row.decisions, cdr_dec)
        np.testing.assert_array_equal(row.phase_track_ui, cdr_phases)


def test_checkpoint_resumed_chunked_sweep_bit_exact(tmp_path):
    session = LinkSession.from_configs(
        tx=TxConfig(), channel=ChannelConfig(0.1), bit_rate=BIT_RATE,
        dfe=DfeConfig(taps=(0.06,), decision_amplitude=0.2))
    grid = ScenarioGrid([
        SweepAxis("length_m", (0.1, 0.2), structural=True),
        SweepAxis("seed", tuple(range(4))),
    ])

    def stimulus(params):
        bits = prbs7(160)
        jitter = RandomJitter(2e-12, seed=params["seed"] + 1)
        wave = NrzEncoder(bit_rate=BIT_RATE, samples_per_bit=8,
                          amplitude=0.4).encode(
            bits, edge_offsets=jitter.offsets(len(bits), BIT_RATE))
        return add_awgn(wave, 0.02, seed=params["seed"] + 1)

    def heights(result):
        return [(r.eye.eye_height, r.dfe_inner_eye_height)
                for r in result.results]

    fresh = session.sweep(grid, stimulus, chunk_rows=3)
    first = session.sweep(grid, stimulus, chunk_rows=3,
                          checkpoint_dir=tmp_path)
    resumed = session.sweep(grid, stimulus, chunk_rows=3,
                            checkpoint_dir=tmp_path)
    assert heights(first) == heights(fresh)
    assert heights(resumed) == heights(fresh)
    # The resumed pass replayed the journal rather than recomputing.
    for r_fresh, r_resumed in zip(fresh.results, resumed.results):
        np.testing.assert_array_equal(r_fresh.dfe_decisions,
                                      r_resumed.dfe_decisions)
        np.testing.assert_array_equal(r_fresh.dfe_corrected,
                                      r_resumed.dfe_corrected)
