"""PRBS generator structure: period, balance, run lengths."""

import numpy as np
import pytest

from repro.signals import (
    PrbsGenerator,
    alternating_pattern,
    prbs7,
    prbs9,
    prbs15,
    prbs_sequence,
    run_length_histogram,
)


def test_prbs7_period_is_127():
    gen = PrbsGenerator(order=7)
    assert gen.period == 127
    seq = gen.full_period()
    assert len(seq) == 127


def test_prbs7_repeats_exactly():
    gen = PrbsGenerator(order=7)
    first = gen.bits(127)
    second = gen.bits(127)
    np.testing.assert_array_equal(first, second)


def test_prbs7_is_balanced():
    # A maximal-length sequence has 2^(n-1) ones and 2^(n-1)-1 zeros.
    seq = prbs7(127)
    assert int(seq.sum()) == 64
    assert int((1 - seq).sum()) == 63


def test_prbs7_max_run_length_is_order():
    seq = prbs7(127 * 2)
    histogram = run_length_histogram(seq)
    assert max(histogram) == 7


def test_prbs9_is_maximal_length():
    seq = prbs9(511)
    assert int(seq.sum()) == 256
    histogram = run_length_histogram(np.tile(seq, 2))
    assert max(histogram) == 9


def test_prbs15_period_spot_check():
    gen = PrbsGenerator(order=15)
    assert gen.period == 32767
    # Balance over one full period.
    seq = gen.full_period()
    assert int(seq.sum()) == 16384


def test_all_seeds_give_shifted_sequences():
    a = prbs7(127, seed=1)
    b = prbs7(127, seed=5)
    # Same cycle, different phase: some rotation of b equals a.
    rotations = [np.roll(b, k) for k in range(127)]
    assert any(np.array_equal(a, rot) for rot in rotations)


def test_invalid_order_rejected():
    with pytest.raises(ValueError):
        PrbsGenerator(order=8)


def test_zero_seed_rejected():
    with pytest.raises(ValueError):
        PrbsGenerator(order=7, seed=0)
    with pytest.raises(ValueError):
        PrbsGenerator(order=7, seed=128)  # == 0 mod 2^7


def test_negative_count_rejected():
    with pytest.raises(ValueError):
        prbs_sequence(7, -1)


def test_alternating_pattern():
    pattern = alternating_pattern(6)
    np.testing.assert_array_equal(pattern, [0, 1, 0, 1, 0, 1])
    histogram = run_length_histogram(pattern)
    assert histogram == {1: 6}


def test_run_length_histogram_empty():
    assert run_length_histogram(np.array([])) == {}


def test_run_length_histogram_counts():
    histogram = run_length_histogram(np.array([1, 1, 0, 1, 1, 1, 0, 0]))
    assert histogram == {2: 2, 1: 1, 3: 1}


def test_prbs7_run_length_distribution():
    # One period contains exactly one run of length 7 and one of 6.
    seq = prbs7(127)
    # Wrap-aware: analyze the doubled sequence minus edge effects by
    # rotating so the sequence starts right after the longest run.
    histogram = run_length_histogram(seq)
    assert histogram.get(7, 0) >= 1
