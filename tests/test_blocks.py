"""Block framework: linear, nonlinear, pipeline composition."""

import numpy as np
import pytest

from repro.lti import (
    DelayBlock,
    GainBlock,
    LinearBlock,
    Pipeline,
    RationalTF,
    StaticNonlinearity,
    SummingNode,
    TanhLimiter,
    WienerHammersteinBlock,
    first_order_lowpass,
)
from repro.signals import Waveform


def wave(data, fs=320e9):
    return Waveform(np.asarray(data, dtype=float), fs)


def test_gain_block():
    out = GainBlock(3.0).process(wave([1.0, -1.0]))
    np.testing.assert_allclose(out.data, [3.0, -3.0])
    assert GainBlock(3.0).transfer_function().dc_gain() == 3.0


def test_linear_block_dc():
    block = LinearBlock(first_order_lowpass(1e9, gain=2.0))
    out = block.process(wave(np.full(64, 1.0)))
    np.testing.assert_allclose(out.data, 2.0, rtol=1e-6)


def test_static_nonlinearity():
    block = StaticNonlinearity(np.sign)
    out = block.process(wave([0.3, -0.7]))
    np.testing.assert_allclose(out.data, [1.0, -1.0])
    assert block.transfer_function() is None


def test_tanh_limiter_small_signal_gain():
    limiter = TanhLimiter(gain=10.0, limit=0.25)
    tiny = limiter.process(wave([1e-6]))
    assert tiny.data[0] == pytest.approx(1e-5, rel=1e-3)
    assert limiter.transfer_function().dc_gain() == pytest.approx(10.0)


def test_tanh_limiter_saturates_at_limit():
    limiter = TanhLimiter(gain=10.0, limit=0.25)
    big = limiter.process(wave([10.0, -10.0]))
    np.testing.assert_allclose(big.data, [0.25, -0.25], rtol=1e-6)


def test_tanh_limiter_rejects_bad_limit():
    with pytest.raises(ValueError):
        TanhLimiter(gain=1.0, limit=0.0)


def test_wiener_hammerstein_small_signal_tf():
    pre = first_order_lowpass(10e9)
    post = first_order_lowpass(20e9, gain=2.0)
    block = WienerHammersteinBlock(
        nonlinearity=TanhLimiter(gain=5.0, limit=1.0), pre=pre, post=post
    )
    tf = block.transfer_function()
    assert tf.dc_gain() == pytest.approx(10.0)
    assert tf.order == 2


def test_wiener_hammerstein_processes_in_order():
    # With only a post filter, saturation happens before smoothing.
    block = WienerHammersteinBlock(
        nonlinearity=TanhLimiter(gain=100.0, limit=1.0),
        post=first_order_lowpass(1e9),
    )
    out = block.process(wave(np.full(2000, 0.5)))
    assert out.data[-1] == pytest.approx(1.0, rel=1e-2)


def test_delay_block():
    block = DelayBlock(delay_s=2 / 320e9)
    out = block.process(wave([1.0, 2.0, 3.0, 4.0]))
    np.testing.assert_allclose(out.data, [1.0, 1.0, 1.0, 2.0])
    with pytest.raises(ValueError):
        DelayBlock(delay_s=-1.0)


def test_summing_node_with_input():
    node = SummingNode(branches=[GainBlock(2.0)], weights=[0.5])
    out = node.process(wave([1.0, 2.0]))
    np.testing.assert_allclose(out.data, [2.0, 4.0])


def test_summing_node_without_input():
    node = SummingNode(branches=[GainBlock(2.0), GainBlock(3.0)],
                       include_input=False)
    out = node.process(wave([1.0]))
    np.testing.assert_allclose(out.data, [5.0])


def test_summing_node_weight_mismatch():
    with pytest.raises(ValueError):
        SummingNode(branches=[GainBlock(1.0)], weights=[1.0, 2.0])


def test_pipeline_chains_blocks():
    pipe = Pipeline([GainBlock(2.0), GainBlock(3.0)])
    out = pipe.process(wave([1.0]))
    assert out.data[0] == pytest.approx(6.0)
    assert len(pipe) == 2
    assert isinstance(pipe[0], GainBlock)


def test_pipeline_transfer_function_cascades():
    pipe = Pipeline([
        LinearBlock(first_order_lowpass(1e9, gain=2.0)),
        GainBlock(5.0),
    ])
    assert pipe.transfer_function().dc_gain() == pytest.approx(10.0)


def test_pipeline_tf_none_when_nonlinear():
    pipe = Pipeline([StaticNonlinearity(np.sign)])
    assert pipe.transfer_function() is None


def test_pipeline_tapped_returns_every_stage():
    pipe = Pipeline([GainBlock(2.0), GainBlock(3.0)])
    taps = pipe.process_tapped(wave([1.0]))
    assert len(taps) == 3
    assert taps[0].data[0] == 1.0
    assert taps[1].data[0] == 2.0
    assert taps[2].data[0] == 6.0


def test_pipeline_appended_and_replaced():
    pipe = Pipeline([GainBlock(2.0)])
    longer = pipe.appended(GainBlock(3.0))
    assert len(longer) == 2
    assert len(pipe) == 1  # original untouched
    swapped = longer.replaced(0, GainBlock(10.0))
    assert swapped.process(wave([1.0])).data[0] == pytest.approx(30.0)


def test_blocks_are_callable():
    assert GainBlock(2.0)(wave([1.0])).data[0] == 2.0
