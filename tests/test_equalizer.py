"""Cherry-Hooper equalizer: tunable zero, V1 knob, current buffers."""

import numpy as np
import pytest

from repro.core import CherryHooperEqualizer, TriodeDegeneration
from repro.devices import nmos


def make_equalizer(**kwargs):
    return CherryHooperEqualizer(
        input_pair=nmos(20e-6, 0.18e-6, 1e-3), **kwargs
    )


def test_triode_resistance_decreases_with_v1():
    deg = TriodeDegeneration()
    assert deg.resistance(0.6) > deg.resistance(1.0)


def test_triode_resistance_range_is_wide():
    # "a wide range of control": several-x over the usable V1 span.
    deg = TriodeDegeneration()
    lo, hi = deg.control_range()
    assert deg.resistance(lo) > 3 * deg.resistance(hi)


def test_triode_rejects_subthreshold_control():
    deg = TriodeDegeneration()
    with pytest.raises(ValueError):
        deg.resistance(0.40)


def test_boost_increases_as_v1_drops():
    # Lower V1 -> larger Rd -> more equalization boost.
    low = make_equalizer(control_voltage=0.55)
    high = make_equalizer(control_voltage=1.0)
    assert low.boost_db > high.boost_db
    assert low.zero_hz < high.zero_hz


def test_dc_gain_rises_with_v1():
    # The Fig 5 y-axis shift: DC gain is degeneration-limited.
    low = make_equalizer(control_voltage=0.55)
    high = make_equalizer(control_voltage=1.0)
    assert high.dc_gain_db() > low.dc_gain_db()


def test_response_is_high_pass_shaped():
    eq = make_equalizer(control_voltage=0.6)
    f = np.array([1e7, eq.zero_hz * 2])
    gain = eq.gain_db(f)
    assert gain[1] > gain[0] + 1.2  # boost above the zero


def test_gain_flat_when_degeneration_small():
    eq = make_equalizer(control_voltage=1.2)
    f = np.array([1e8, 2e9])
    gain = eq.gain_db(f)
    assert abs(gain[1] - gain[0]) < 2.0


def test_boost_matches_analytic_ratio():
    eq = make_equalizer(control_voltage=0.6)
    gm1 = eq.gm1_tf()
    # HF transconductance / DC transconductance equals the boost ratio.
    hf = abs(gm1.response(np.array([200e9]))[0])
    dc = abs(gm1.dc_gain())
    assert hf / dc == pytest.approx(eq.boost_ratio, rel=0.02)


def test_current_buffers_raise_gain():
    # Fig 5(a) vs 5(b): active feedback through M1/M2 recovers the
    # loop-gain factor that loaded resistive feedback loses.
    with_buffers = make_equalizer()
    without = with_buffers.without_current_buffers()
    assert with_buffers.dc_gain_db() > without.dc_gain_db() + 4.0


def test_current_buffers_improve_linearity():
    # Output-referred 1 dB compression: the unloaded (current-buffer)
    # feedback roughly doubles the undistorted output capability.
    with_buffers = make_equalizer()
    without = with_buffers.without_current_buffers()
    assert with_buffers.output_p1db() > 1.5 * without.output_p1db()


def test_gain_compression_monotone():
    eq = make_equalizer()
    assert eq.gain_compression_db(1e-4) < 0.1
    assert eq.gain_compression_db(0.5) > 3.0
    with pytest.raises(ValueError):
        eq.gain_compression_db(0.0)


def test_input_match_is_50_ohm():
    eq = make_equalizer()
    assert eq.input_impedance() == pytest.approx(50.0)
    assert eq.input_return_loss_db() > 20.0


def test_small_signal_tf_is_stable():
    assert make_equalizer().small_signal_tf().is_stable()
    assert make_equalizer(control_voltage=0.55).small_signal_tf().is_stable()


def test_tuned_returns_new_instance():
    eq = make_equalizer(control_voltage=0.7)
    tuned = eq.tuned(0.6)
    assert tuned.control_voltage == 0.6
    assert eq.control_voltage == 0.7


def test_block_limits_at_output_limit():
    from repro.signals import bits_to_nrz, prbs7

    eq = make_equalizer()
    block = eq.to_block()
    wave = bits_to_nrz(prbs7(60), 10e9, amplitude=2.0, samples_per_bit=16)
    out = block.process(wave)
    # Settled levels sit at the limit; transient (inductive/zero-driven)
    # overshoot may briefly exceed it.
    assert abs(out.data[-1]) <= eq.output_limit * 1.02
    assert out.data.max() <= eq.output_limit * 1.6


def test_supply_current_accounts_for_buffers():
    eq = make_equalizer()
    without = eq.without_current_buffers()
    assert eq.supply_current > without.supply_current


def test_validation():
    with pytest.raises(ValueError):
        make_equalizer(control_voltage=0.3)  # below triode range
    with pytest.raises(ValueError):
        make_equalizer(r_stage1=0.0)
    with pytest.raises(ValueError):
        make_equalizer(feedback_loop_gain=-1.0)
    with pytest.raises(ValueError):
        TriodeDegeneration(width=0.0)
    with pytest.raises(ValueError):
        TriodeDegeneration(capacitance=-1e-15)
