"""The kernel backend layer: selection, bit-exactness, chunked passes.

Three contracts from the compiled-kernels PR:

* **selection** — ``repro.kernels`` resolves its default lazily
  (env override > numba-if-importable > numpy), errors clearly when
  ``REPRO_KERNELS=numba`` has nothing to import, and restores the
  previous default after ``use_backend`` blocks;
* **bit-exactness** — every importable backend produces *identical*
  arrays from the three bit-serial kernels (CDR recurrence, DFE loop,
  ``sample_uniform``), including early-terminating rows and NaN
  phase tails, and the vectorized batch lock detector matches the
  serial one row by row;
* **chunked fused pass** — ``LinkSession.run_batch(chunk_rows=...)``
  and ``SweepRunner(chunk_rows=...)`` are row-exact against their
  monolithic runs across uneven chunk boundaries.
"""

import os
import subprocess
import sys

import numpy as np
import pytest

from repro import kernels
from repro.baselines import DecisionFeedbackEqualizer, dfe_taps_from_channel
from repro.cdr import BangBangCdr, CdrConfig
from repro.channel import BackplaneChannel
from repro.link import ChannelConfig, DfeConfig, LinkSession, RxConfig, \
    TxConfig, stage
from repro.signals import (
    NrzEncoder,
    RandomJitter,
    WaveformBatch,
    add_awgn,
    bits_to_nrz,
    prbs7,
)
from repro.sweep import ScenarioGrid, SweepAxis

BIT_RATE = 10e9
BACKENDS = kernels.available_backends()
HAVE_NUMBA = "numba" in BACKENDS


def make_batch(n_scenarios=8, n_bits=220, samples_per_bit=8):
    encoder = NrzEncoder(bit_rate=BIT_RATE, samples_per_bit=samples_per_bit,
                         amplitude=0.4)
    bits = prbs7(n_bits)
    waves = []
    for seed in range(1, n_scenarios + 1):
        jitter = RandomJitter(3e-12, seed=seed)
        wave = encoder.encode(bits,
                              edge_offsets=jitter.offsets(n_bits, BIT_RATE))
        waves.append(add_awgn(wave, rms_volts=0.02, seed=seed))
    return WaveformBatch.stack(waves)


# ---------------------------------------------------------------------------
# Backend selection.
# ---------------------------------------------------------------------------

def test_numpy_backend_always_available():
    assert "numpy" in BACKENDS
    assert kernels.backend_name() in BACKENDS


def test_unknown_backend_name_rejected():
    with pytest.raises(ValueError, match="unknown kernel backend"):
        kernels.get_backend("cython")
    with pytest.raises(ValueError, match="unknown kernel backend"):
        kernels.set_backend("cython")


def test_use_backend_pins_and_restores():
    before = kernels.backend_name()
    with kernels.use_backend("numpy") as backend:
        assert backend.NAME == "numpy"
        assert kernels.backend_name() == "numpy"
    assert kernels.backend_name() == before


def test_set_backend_switches_default():
    before = kernels.backend_name()
    try:
        assert kernels.set_backend("numpy").NAME == "numpy"
        assert kernels.backend_name() == "numpy"
    finally:
        kernels.set_backend(before)


def _run_subprocess(code, **env_overrides):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env.update(env_overrides)
    return subprocess.run([sys.executable, "-c", code], env=env,
                          capture_output=True, text=True)


def test_env_override_numpy():
    proc = _run_subprocess(
        "from repro import kernels; print(kernels.backend_name())",
        REPRO_KERNELS="numpy",
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip() == "numpy"


def test_env_override_unknown_name_errors_lazily():
    # import repro must succeed; the error surfaces on first kernel use.
    proc = _run_subprocess(
        "import repro\n"
        "from repro import kernels\n"
        "try:\n"
        "    kernels.backend_name()\n"
        "except ValueError as error:\n"
        "    print('lazy-error', error)\n",
        REPRO_KERNELS="cython",
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.startswith("lazy-error")


@pytest.mark.skipif(HAVE_NUMBA,
                    reason="numba installed; the missing-backend error "
                           "path is unreachable")
def test_env_override_numba_without_numba_errors_clearly():
    proc = _run_subprocess(
        "import repro\n"
        "from repro import kernels\n"
        "try:\n"
        "    kernels.backend_name()\n"
        "except RuntimeError as error:\n"
        "    print('clear-error', error)\n",
        REPRO_KERNELS="numba",
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.startswith("clear-error")
    assert "REPRO_KERNELS" in proc.stdout


@pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")
def test_env_override_numba():
    proc = _run_subprocess(
        "from repro import kernels; print(kernels.backend_name())",
        REPRO_KERNELS="numba",
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip() == "numba"


def test_import_repro_with_default_selection():
    """`import repro` works with no env override regardless of numba."""
    proc = _run_subprocess(
        "import repro\n"
        "from repro import kernels\n"
        "print(kernels.backend_name())\n",
        REPRO_KERNELS="",
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip() in ("numpy", "numba")


# ---------------------------------------------------------------------------
# Cross-backend bit-exactness.
# ---------------------------------------------------------------------------

def _cdr_arrays(backend_name, batch, **overrides):
    cdr = BangBangCdr(CdrConfig(bit_rate=BIT_RATE, kp=8e-3, ki=2e-5))
    with kernels.use_backend(backend_name):
        result = stage(cdr).recover(batch, **overrides)
    return result


@pytest.mark.parametrize("backend", BACKENDS)
def test_cdr_backend_matches_numpy_reference(backend):
    batch = make_batch()
    # Large per-row frequency offsets force cycle slips and make some
    # rows run out of waveform early — the ragged-tail code paths.
    ppm = np.linspace(-4e4, 4e4, batch.n_scenarios)
    reference = _cdr_arrays("numpy", batch, initial_frequency_ppm=ppm)
    candidate = _cdr_arrays(backend, batch, initial_frequency_ppm=ppm)

    assert np.array_equal(candidate.n_bits, reference.n_bits)
    # The offsets above must actually produce ragged rows for this test
    # to mean anything.
    assert len(np.unique(reference.n_bits)) > 1
    np.testing.assert_array_equal(candidate.decisions, reference.decisions)
    assert np.array_equal(candidate.phase_track_ui,
                          reference.phase_track_ui, equal_nan=True)
    np.testing.assert_array_equal(candidate.votes, reference.votes)
    np.testing.assert_array_equal(candidate.slips, reference.slips)
    np.testing.assert_array_equal(candidate.locked_at_bit,
                                  reference.locked_at_bit)


@pytest.mark.parametrize("backend", BACKENDS)
def test_dfe_backend_matches_numpy_reference(backend):
    channel = BackplaneChannel(0.5)
    received = channel.process(
        bits_to_nrz(prbs7(260), BIT_RATE, amplitude=1.0, samples_per_bit=16))
    batch = WaveformBatch.with_noise_seeds(received, rms_volts=0.01,
                                           seeds=list(range(1, 9)))
    dfe = DecisionFeedbackEqualizer(
        taps=dfe_taps_from_channel(channel, BIT_RATE, n_taps=3,
                                   amplitude=1.0),
        bit_rate=BIT_RATE)
    with kernels.use_backend("numpy"):
        ref_decisions, ref_corrected = stage(dfe).equalize(batch)
    with kernels.use_backend(backend):
        decisions, corrected = stage(dfe).equalize(batch)
    np.testing.assert_array_equal(decisions, ref_decisions)
    np.testing.assert_array_equal(corrected, ref_corrected)


@pytest.mark.parametrize("backend", BACKENDS)
def test_sample_uniform_backend_matches_numpy_reference(backend):
    rng = np.random.default_rng(7)
    data = rng.normal(size=(6, 50))
    t0, sample_rate = 2e-10, 8e10
    # Includes times outside the span: both ends must clamp identically.
    times = np.array([-1e-9, 0.0, 2.5e-10, 3.1e-10, 5e-10, 1e-6])
    reference = kernels.get_backend("numpy").sample_uniform(
        data, t0, sample_rate, times)
    candidate = kernels.get_backend(backend).sample_uniform(
        data, t0, sample_rate, times)
    np.testing.assert_array_equal(candidate, reference)
    assert candidate.shape == (6,)


@pytest.mark.parametrize("backend", BACKENDS)
def test_serial_recover_matches_batch_rows_under_backend(backend):
    """The serial reference loop pins every backend, not just numpy."""
    batch = make_batch(n_scenarios=4)
    cdr = BangBangCdr(CdrConfig(bit_rate=BIT_RATE, kp=8e-3, ki=2e-5))
    with kernels.use_backend(backend):
        batched = stage(cdr).recover(batch)
    for i, wave in enumerate(batch.rows()):
        reference = cdr.recover(wave)
        row = batched.row(i)
        np.testing.assert_array_equal(row.decisions, reference.decisions)
        np.testing.assert_array_equal(row.phase_track_ui,
                                      reference.phase_track_ui)
        assert row.slips == reference.slips
        assert row.locked_at_bit == reference.locked_at_bit


# ---------------------------------------------------------------------------
# Vectorized lock detection.
# ---------------------------------------------------------------------------

def test_detect_lock_batch_matches_serial_rows():
    batch = make_batch(n_scenarios=10)
    ppm = np.linspace(-4e4, 4e4, batch.n_scenarios)
    cdr = BangBangCdr(CdrConfig(bit_rate=BIT_RATE, kp=8e-3, ki=2e-5))
    result = stage(cdr).recover(batch, initial_frequency_ppm=ppm)
    locked = BangBangCdr._detect_lock_batch(result.phase_track_ui,
                                            result.n_bits)
    for i in range(batch.n_scenarios):
        track = result.phase_track_ui[i, :result.n_bits[i]]
        assert locked[i] == BangBangCdr._detect_lock(track), f"row {i}"


def test_detect_lock_batch_synthetic_edges():
    window = 64
    # Row 0: flat from the start — locks at 0.  Row 1: settles exactly
    # at the last admissible window.  Row 2: never settles.  Row 3: too
    # short once its ragged length is accounted for.
    total = 4 * window
    phases = np.empty((4, total))
    phases[0] = 0.3
    phases[1] = np.concatenate([np.linspace(1.0, 0.3, total - 2 * window),
                                np.full(2 * window, 0.3)])
    phases[2] = np.linspace(0.0, 5.0, total)
    phases[3, :] = 0.3
    phases[3, window:] = np.nan
    row_bits = np.array([total, total, total, window], dtype=np.int64)
    locked = BangBangCdr._detect_lock_batch(phases, row_bits)
    assert locked[0] == 0
    # The ramp's tail fits the tolerance window a few bits before it
    # ends; the exact index is pinned by the serial-parity loop below.
    assert 0 < locked[1] <= total - 2 * window
    assert locked[2] == -1
    assert locked[3] == -1
    for i in range(4):
        track = phases[i, :row_bits[i]]
        assert locked[i] == BangBangCdr._detect_lock(track), f"row {i}"


def test_detect_lock_batch_short_batch_returns_unlocked():
    phases = np.zeros((3, 40))
    row_bits = np.full(3, 40, dtype=np.int64)
    locked = BangBangCdr._detect_lock_batch(phases, row_bits)
    np.testing.assert_array_equal(locked, [-1, -1, -1])


# ---------------------------------------------------------------------------
# Chunked fused pass.
# ---------------------------------------------------------------------------

def _session():
    return LinkSession.from_configs(
        TxConfig(), ChannelConfig(0.3), RxConfig(),
        bit_rate=BIT_RATE,
        cdr=CdrConfig(bit_rate=BIT_RATE, kp=8e-3, ki=2e-5),
        dfe=DfeConfig(taps=(0.05, 0.02)),
    )


def _assert_batch_results_equal(chunked, mono):
    np.testing.assert_array_equal(chunked.output.data, mono.output.data)
    assert chunked.output.sample_rate == mono.output.sample_rate
    assert chunked.output.t0 == mono.output.t0
    assert chunked.eyes == mono.eyes
    np.testing.assert_array_equal(chunked.cdr.decisions, mono.cdr.decisions)
    assert np.array_equal(chunked.cdr.phase_track_ui,
                          mono.cdr.phase_track_ui, equal_nan=True)
    np.testing.assert_array_equal(chunked.cdr.locked_at_bit,
                                  mono.cdr.locked_at_bit)
    np.testing.assert_array_equal(chunked.cdr.slips, mono.cdr.slips)
    np.testing.assert_array_equal(chunked.dfe_decisions, mono.dfe_decisions)
    np.testing.assert_array_equal(chunked.dfe_corrected, mono.dfe_corrected)
    np.testing.assert_array_equal(chunked.dfe_inner_eye_heights,
                                  mono.dfe_inner_eye_heights)


@pytest.mark.parametrize("chunk_rows", [1, 5, 7, 23, 50])
def test_chunked_run_batch_row_exact(chunk_rows):
    batch = make_batch(n_scenarios=23, n_bits=120)
    session = _session()
    mono = session.run_batch(batch)
    chunked = session.run_batch(batch, chunk_rows=chunk_rows)
    assert chunked.n_scenarios == 23
    _assert_batch_results_equal(chunked, mono)


def test_run_batch_keep_output_false_drops_waveforms():
    batch = make_batch(n_scenarios=9, n_bits=120)
    session = _session()
    mono = session.run_batch(batch)
    slim = session.run_batch(batch, chunk_rows=4, keep_output=False)
    assert slim.output.data.shape == (9, 0)
    assert slim.eyes == mono.eyes
    np.testing.assert_array_equal(slim.cdr.decisions, mono.cdr.decisions)
    np.testing.assert_array_equal(slim.dfe_corrected, mono.dfe_corrected)


def test_run_batch_chunk_rows_validation():
    session = _session()
    batch = make_batch(n_scenarios=2, n_bits=120)
    with pytest.raises(ValueError, match="chunk_rows"):
        session.run_batch(batch, chunk_rows=0)


def test_sweep_chunk_rows_matches_monolithic():
    session = _session()
    encoder = NrzEncoder(bit_rate=BIT_RATE, samples_per_bit=8, amplitude=0.4)
    bits = prbs7(120)

    def stimulus(params):
        jitter = RandomJitter(2e-12, seed=params["seed"])
        return encoder.encode(
            bits, edge_offsets=jitter.offsets(120, BIT_RATE))

    grid = ScenarioGrid([SweepAxis("seed", tuple(range(1, 8)))])
    mono = session.sweep(grid, stimulus,
                         measure=lambda out, params: list(out.data.sum(1)))
    chunked = session.sweep(grid, stimulus, chunk_rows=3,
                            measure=lambda out, params: list(out.data.sum(1)))
    assert mono.results == chunked.results
