"""Rational transfer-function algebra and frequency-domain metrics."""

import math

import numpy as np
import pytest

from repro.lti import (
    RationalTF,
    first_order_lowpass,
    pole_zero_tf,
    second_order_lowpass,
)


def test_constant_tf():
    tf = RationalTF.constant(5.0)
    assert tf.dc_gain() == pytest.approx(5.0)
    assert tf.order == 0
    np.testing.assert_allclose(np.abs(tf.response(np.array([1e9]))), 5.0)


def test_denominator_zero_rejected():
    with pytest.raises(ValueError):
        RationalTF(np.array([1.0]), np.array([0.0]))


def test_normalization_makes_den_monic():
    tf = RationalTF(np.array([2.0]), np.array([4.0, 8.0]))
    assert tf.den[0] == pytest.approx(1.0)
    assert tf.dc_gain() == pytest.approx(0.25)


def test_first_order_lowpass_3db_point():
    tf = first_order_lowpass(1e9, gain=10.0)
    assert tf.dc_gain() == pytest.approx(10.0)
    assert tf.bandwidth_3db() == pytest.approx(1e9, rel=1e-3)
    mag = abs(tf.response(np.array([1e9]))[0])
    assert mag == pytest.approx(10.0 / math.sqrt(2.0), rel=1e-6)


def test_cascade_multiplies_gain_and_shrinks_bandwidth():
    one = first_order_lowpass(1e9, gain=2.0)
    two = one.cascade(one)
    assert two.dc_gain() == pytest.approx(4.0)
    # Two identical poles: BW shrinks by sqrt(sqrt(2)-1) ~ 0.644.
    assert two.bandwidth_3db() == pytest.approx(0.6436e9, rel=1e-2)


def test_parallel_adds_responses():
    a = RationalTF.constant(1.0)
    b = RationalTF.constant(2.0)
    assert (a + b).dc_gain() == pytest.approx(3.0)
    assert (b - a).dc_gain() == pytest.approx(1.0)


def test_unity_feedback_divides_gain():
    tf = RationalTF.constant(9.0).feedback()
    assert tf.dc_gain() == pytest.approx(0.9)


def test_feedback_with_loop_tf():
    forward = first_order_lowpass(1e9, gain=100.0)
    loop = RationalTF.constant(0.01)
    closed = forward.feedback(loop)
    assert closed.dc_gain() == pytest.approx(50.0)
    # Feedback extends bandwidth by (1 + T) for a single pole.
    assert closed.bandwidth_3db() == pytest.approx(2e9, rel=1e-2)


def test_inverse():
    tf = RationalTF.constant(4.0)
    assert tf.inverse().dc_gain() == pytest.approx(0.25)
    with pytest.raises(ValueError):
        RationalTF(np.array([0.0]), np.array([1.0])).inverse()


def test_poles_zeros_roundtrip():
    poles = [-1e9, -2e9]
    zeros = [-5e8]
    tf = RationalTF.from_poles_zeros(zeros, poles, gain=3.0)
    np.testing.assert_allclose(sorted(tf.poles().real), sorted(poles))
    np.testing.assert_allclose(tf.zeros().real, zeros)


def test_from_poles_zeros_rejects_unpaired_complex():
    with pytest.raises(ValueError):
        RationalTF.from_poles_zeros([], [-1e9 + 1e9j], gain=1.0)


def test_complex_pair_is_accepted():
    tf = RationalTF.from_poles_zeros([], [-1e9 + 2e9j, -1e9 - 2e9j])
    assert tf.is_stable()
    assert tf.order == 2


def test_stability_detection():
    assert first_order_lowpass(1e9).is_stable()
    unstable = RationalTF(np.array([1.0]), np.array([1.0, -1.0]))
    assert not unstable.is_stable()


def test_dc_gain_with_pole_at_origin_raises():
    with pytest.raises(ZeroDivisionError):
        RationalTF.integrator().dc_gain()


def test_second_order_lowpass_peaking():
    # Q = 2 peaks by ~6.3 dB; Q = 0.5 (critically damped) doesn't peak.
    peaked = second_order_lowpass(5e9, q=2.0)
    flat = second_order_lowpass(5e9, q=0.5)
    assert peaked.peaking_db() == pytest.approx(6.3, abs=0.3)
    assert flat.peaking_db() == pytest.approx(0.0, abs=0.01)


def test_second_order_butterworth_bandwidth():
    # Q = 0.707 gives -3 dB exactly at the natural frequency.
    tf = second_order_lowpass(5e9, q=1.0 / math.sqrt(2.0))
    assert tf.bandwidth_3db() == pytest.approx(5e9, rel=1e-2)


def test_pole_zero_tf_dc_gain_independent_of_placement():
    tf = pole_zero_tf([1e9, 3e9], [5e8], gain=7.0)
    assert tf.dc_gain() == pytest.approx(7.0)


def test_pole_zero_tf_zero_boosts_high_frequency():
    tf = pole_zero_tf([20e9], [1e9], gain=1.0)
    mag = np.abs(tf.response(np.array([5e9])))[0]
    assert mag > 3.0  # well above DC gain


def test_pole_zero_tf_rejects_nonpositive():
    with pytest.raises(ValueError):
        pole_zero_tf([-1e9])
    with pytest.raises(ValueError):
        pole_zero_tf([1e9], [0.0])


def test_bandwidth_returns_inf_for_allpass():
    tf = RationalTF.constant(2.0)
    assert math.isinf(tf.bandwidth_3db())


def test_group_delay_of_lowpass():
    # Single pole: group delay at DC = 1/wp.
    tf = first_order_lowpass(1e9)
    freqs = np.linspace(1e6, 1e8, 50)
    gd = tf.group_delay(freqs)
    assert gd[0] == pytest.approx(1.0 / (2 * np.pi * 1e9), rel=0.01)


def test_phase_of_lowpass_at_pole():
    tf = first_order_lowpass(1e9)
    phase = tf.phase_deg(np.array([1e6, 1e9]))
    assert phase[1] == pytest.approx(-45.0, abs=1.0)


def test_magnitude_db():
    tf = RationalTF.constant(10.0)
    np.testing.assert_allclose(tf.magnitude_db(np.array([1e9])), 20.0)


def test_scaled():
    tf = first_order_lowpass(1e9, gain=2.0).scaled(3.0)
    assert tf.dc_gain() == pytest.approx(6.0)
