"""The batch-first ``LinkSession`` facade and the ``Stage`` dispatch.

Pins the api-redesign contract:

* ``LinkSession.run`` and ``run_batch`` are row-exact across
  jitter/noise/channel-length scenarios (one dispatching code path);
* every block family — LTI blocks/pipelines, channels, core
  interfaces, baseline CTLE/DFE/pre-emphasis, CDR, the framed serdes
  runner — is drivable through ``stage()`` with Waveform in →
  Waveform out and WaveformBatch in → WaveformBatch out, matching the
  family's serial reference per row;
* the old ``*_batch`` twins are deprecated shims that still delegate
  to the same kernels.
"""

import dataclasses

import numpy as np
import pytest

from repro import (
    ChannelConfig,
    CdrConfig,
    DfeConfig,
    LinkBatchResult,
    LinkResult,
    LinkSession,
    RxConfig,
    ScenarioGrid,
    Stage,
    SweepAxis,
    TxConfig,
    WaveformBatch,
    bits_to_nrz,
    prbs7,
    run_framed_link,
    run_link,
    sample_uniform,
    stage,
)
from repro.baselines import (
    DecisionFeedbackEqualizer,
    FirPreEmphasis,
    GenericCtle,
    dfe_taps_from_channel,
)
from repro.cdr import BangBangCdr
from repro.channel import BackplaneChannel
from repro.core import build_input_interface
from repro.link import BlockStage, CdrStage, DfeStage
from repro.lti import GainBlock, LinearBlock, Pipeline, TanhLimiter, \
    first_order_lowpass
from repro.serdes import run_link_batch
from repro.signals import NrzEncoder, RandomJitter, add_awgn

BIT_RATE = 10e9


def scenario_batch(n_rows=3, n_bits=300, amplitude=0.25, noise_rms=2e-3):
    """Per-row jittered + noisy PRBS stimulus."""
    encoder = NrzEncoder(bit_rate=BIT_RATE, samples_per_bit=16,
                         amplitude=amplitude)
    bits = prbs7(n_bits)
    waves = []
    for seed in range(1, n_rows + 1):
        jitter = RandomJitter(2e-12, seed=seed)
        wave = encoder.encode(bits,
                              edge_offsets=jitter.offsets(n_bits, BIT_RATE))
        waves.append(add_awgn(wave, noise_rms, seed=seed))
    return WaveformBatch.stack(waves)


def assert_results_equal(single: LinkResult, from_batch: LinkResult):
    np.testing.assert_array_equal(single.output.data,
                                  from_batch.output.data)
    assert single.eye == from_batch.eye
    if single.cdr is None:
        assert from_batch.cdr is None
    else:
        np.testing.assert_array_equal(single.cdr.decisions,
                                      from_batch.cdr.decisions)
        np.testing.assert_array_equal(single.cdr.phase_track_ui,
                                      from_batch.cdr.phase_track_ui)
        assert single.cdr.locked_at_bit == from_batch.cdr.locked_at_bit
        assert single.cdr.slips == from_batch.cdr.slips
    if single.dfe_corrected is None:
        assert from_batch.dfe_corrected is None
    else:
        np.testing.assert_array_equal(single.dfe_decisions,
                                      from_batch.dfe_decisions)
        np.testing.assert_array_equal(single.dfe_corrected,
                                      from_batch.dfe_corrected)
        assert single.dfe_inner_eye_height == \
            from_batch.dfe_inner_eye_height


# -- run vs run_batch row-exactness -------------------------------------------

@pytest.mark.parametrize("length_m", [0.0, 0.4])
def test_run_vs_run_batch_row_exact_across_scenarios(length_m):
    session = LinkSession.from_configs(
        channel=ChannelConfig(length_m),
        cdr=CdrConfig(bit_rate=BIT_RATE),
        dfe=DfeConfig(taps=(0.02,)),
    )
    batch = scenario_batch(n_rows=3)
    batched = session.run_batch(batch)
    assert isinstance(batched, LinkBatchResult)
    assert batched.n_scenarios == 3
    for i in range(3):
        assert_results_equal(session.run(batch[i]), batched.row(i))
    assert batched.lock_yield() == 1.0
    assert np.all(batched.eye_heights() > 0)


def test_run_vs_run_batch_row_exact_across_noise_levels():
    session = LinkSession.from_configs(tx=None, channel=None,
                                       cdr=CdrConfig(bit_rate=BIT_RATE))
    rows = [scenario_batch(1, noise_rms=rms)[0]
            for rms in (0.0, 5e-3, 2e-2)]
    batched = session.run_batch(rows)          # sequence form stacks
    for i, row in enumerate(rows):
        assert_results_equal(session.run(row), batched.row(i))


def test_run_rejects_batches_and_run_batch_accepts_waveform():
    session = LinkSession([], bit_rate=BIT_RATE)
    batch = scenario_batch(2)
    with pytest.raises(TypeError):
        session.run(batch)
    single = session.run_batch(batch[0])
    assert single.n_scenarios == 1


# -- stage() dispatch per block family ----------------------------------------

def _dispatch_check(wrapped, serial_process, batch, exact=True):
    """Waveform in → Waveform out; batch in → batch out; rows match the
    family's serial reference."""
    single_out = wrapped(batch[0])
    reference = serial_process(batch[0])
    assert not isinstance(single_out, WaveformBatch)
    comparer = (np.testing.assert_array_equal if exact
                else lambda a, b: np.testing.assert_allclose(
                    a, b, rtol=0, atol=1e-12))
    comparer(single_out.data, reference.data)
    batch_out = wrapped(batch)
    assert isinstance(batch_out, WaveformBatch)
    for i in range(batch.n_scenarios):
        comparer(batch_out.data[i], serial_process(batch[i]).data)


def test_stage_dispatch_lti_blocks_and_pipeline():
    batch = scenario_batch(3)
    limiter = TanhLimiter(gain=4.0, limit=0.125)
    _dispatch_check(stage(limiter), limiter.process, batch)
    pipe = Pipeline([GainBlock(2.0),
                     LinearBlock(first_order_lowpass(8e9)),
                     limiter])
    _dispatch_check(stage(pipe), pipe.process, batch)


def test_stage_dispatch_channel():
    batch = scenario_batch(3)
    channel = BackplaneChannel(0.4)
    _dispatch_check(stage(channel), channel.process, batch)


def test_stage_dispatch_core_interface():
    batch = scenario_batch(2)
    rx = build_input_interface()
    _dispatch_check(stage(rx), rx.process, batch)


def test_stage_dispatch_baseline_ctle_and_preemphasis():
    batch = scenario_batch(2)
    ctle = GenericCtle(dc_gain=1.0, zero_hz=2e9, pole1_hz=6e9,
                       pole2_hz=12e9)
    _dispatch_check(stage(ctle), ctle.to_block().process, batch)
    fir = FirPreEmphasis(taps=(1.2, -0.2), bit_rate=BIT_RATE)
    _dispatch_check(stage(fir), fir.process, batch)


def test_stage_dispatch_dfe_matches_serial():
    channel = BackplaneChannel(0.5)
    received = channel.process(
        bits_to_nrz(prbs7(120), BIT_RATE, amplitude=1.0,
                    samples_per_bit=16))
    batch = WaveformBatch.stack([add_awgn(received, 0.02, seed=s)
                                 for s in range(1, 5)])
    taps = dfe_taps_from_channel(channel, BIT_RATE, n_taps=2, amplitude=1.0)
    dfe = DecisionFeedbackEqualizer(taps=taps, bit_rate=BIT_RATE)
    wrapped = stage(dfe)
    assert isinstance(wrapped, DfeStage)
    decisions, corrected = wrapped.equalize(batch)
    heights = wrapped.inner_eye_height(batch)
    for i, row in enumerate(batch.rows()):
        ref_decisions, ref_corrected = dfe.equalize(row)
        np.testing.assert_array_equal(decisions[i], ref_decisions)
        np.testing.assert_array_equal(corrected[i], ref_corrected)
        assert heights[i] == dfe.inner_eye_height(row)
        one_decisions, one_corrected = wrapped.equalize(row)
        np.testing.assert_array_equal(one_decisions, ref_decisions)
        np.testing.assert_array_equal(one_corrected, ref_corrected)
    # The waveform-domain form: corrected samples on the baud timebase.
    as_batch = wrapped(batch)
    assert isinstance(as_batch, WaveformBatch)
    assert as_batch.sample_rate == BIT_RATE
    np.testing.assert_array_equal(as_batch.data, corrected)


def test_stage_dispatch_cdr_matches_serial():
    batch = scenario_batch(3, amplitude=0.4)
    cdr = BangBangCdr(CdrConfig(bit_rate=BIT_RATE))
    wrapped = stage(cdr)
    assert isinstance(wrapped, CdrStage)
    batched = wrapped.recover(batch)
    for i in range(len(batch)):
        serial = cdr.recover(batch[i])
        row = batched.row(i)
        np.testing.assert_array_equal(row.decisions, serial.decisions)
        np.testing.assert_array_equal(row.phase_track_ui,
                                      serial.phase_track_ui)
        np.testing.assert_array_equal(row.votes, serial.votes)
        assert row.locked_at_bit == serial.locked_at_bit
        assert row.slips == serial.slips
        single = wrapped.recover(batch[i])
        np.testing.assert_array_equal(single.decisions, serial.decisions)
    # Waveform-domain form: the decision streams at the bit rate.
    decisions_wave = wrapped(batch)
    assert isinstance(decisions_wave, WaveformBatch)
    assert decisions_wave.sample_rate == BIT_RATE
    np.testing.assert_array_equal(decisions_wave.data,
                                  batched.decisions.astype(float))


def test_stage_dispatch_cdr_initial_state_overrides():
    batch = scenario_batch(3, amplitude=0.4)
    base = CdrConfig(bit_rate=BIT_RATE)
    phases0 = np.array([-0.3, 0.0, 0.4])
    ppm = np.array([0.0, 100.0, -100.0])
    batched = stage(BangBangCdr(base)).recover(
        batch, initial_phase_ui=phases0, initial_frequency_ppm=ppm)
    for i in range(3):
        config = dataclasses.replace(base,
                                     initial_phase_ui=float(phases0[i]),
                                     initial_frequency_ppm=float(ppm[i]))
        serial = BangBangCdr(config).recover(batch[i])
        np.testing.assert_array_equal(batched.row(i).decisions,
                                      serial.decisions)
        np.testing.assert_array_equal(batched.row(i).phase_track_ui,
                                      serial.phase_track_ui)


def test_stage_dispatch_framed_serdes():
    payload = b"facade framed link!!"
    seeds = [1, 2, 3]
    rms = 0.01
    batch_report = run_framed_link(
        payload,
        path=lambda w: WaveformBatch.with_noise_seeds(w, rms, seeds),
        training_commas=24, training_bytes=4,
    )
    assert batch_report.n_scenarios == len(seeds)
    for seed, from_batch in zip(seeds, batch_report):
        reference = run_link(
            payload,
            analog_path=lambda w, seed=seed: add_awgn(w, rms, seed=seed),
            training_commas=24, training_bytes=4,
        )
        assert from_batch.payload_received == reference.payload_received
        assert from_batch.cdr_locked == reference.cdr_locked
        assert from_batch.cdr_slips == reference.cdr_slips
    # A waveform-returning path dispatches to the single-report form.
    single = run_framed_link(payload, path=lambda w: w,
                             training_commas=24, training_bytes=4)
    assert single.error_free
    with pytest.raises(TypeError):
        run_framed_link(b"junk", path=lambda w: w.data)


def test_stage_adapter_rules():
    limiter = TanhLimiter(gain=2.0, limit=0.1)
    wrapped = stage(limiter)
    assert isinstance(wrapped, BlockStage)
    assert stage(wrapped) is wrapped           # Stage passes through
    assert isinstance(wrapped, Stage)
    named = stage(lambda b: b * 2.0, name="doubler")
    assert named.name == "doubler"
    batch = scenario_batch(2)
    np.testing.assert_array_equal(named(batch).data, 2.0 * batch.data)
    with pytest.raises(TypeError):
        wrapped(np.zeros(8))                   # not a signal
    with pytest.raises(TypeError):
        stage(object())


def test_stage_fanout_keeps_batch_form():
    # A stage kernel may expand scenarios (noise fan-out); the result
    # then stays a batch even when the input was a single waveform.
    fan = stage(lambda b: b.with_data(np.repeat(b.data, 4, axis=0)),
                name="fanout")
    wave = scenario_batch(1)[0]
    out = fan(wave)
    assert isinstance(out, WaveformBatch)      # 1 -> 4 rows stays a batch
    assert out.n_scenarios == 4


# -- sweep through the facade -------------------------------------------------

def test_session_sweep_batched_matches_serial_reference():
    session = LinkSession.from_configs(
        tx=TxConfig(), channel=ChannelConfig(0.3),
        rx=RxConfig(equalizer_control_voltage=0.6),
        cdr=CdrConfig(bit_rate=BIT_RATE))
    grid = ScenarioGrid([
        SweepAxis("length_m", (0.2, 0.5), structural=True),
        SweepAxis("seed", (1, 2, 3)),
    ])

    def stimulus(params):
        wave = bits_to_nrz(prbs7(220), BIT_RATE, amplitude=0.25,
                           samples_per_bit=16)
        return add_awgn(wave, 3e-3, seed=params["seed"])

    batched = session.sweep(grid, stimulus)
    serial = session.sweep(grid, stimulus, serial=True)
    heights = batched.values(lambda r: r.eye.eye_height)
    assert heights.shape == grid.shape
    np.testing.assert_array_equal(
        heights, serial.values(lambda r: r.eye.eye_height))
    locks = batched.values(lambda r: float(r.cdr_locked))
    np.testing.assert_array_equal(
        locks, serial.values(lambda r: float(r.cdr_locked)))
    assert np.all(locks == 1.0)


def test_session_sweep_structural_rebuild_changes_the_chain():
    session = LinkSession.from_configs(channel=ChannelConfig(0.2))
    grid = ScenarioGrid([
        SweepAxis("length_m", (0.1, 1.2), structural=True),
        SweepAxis("seed", (1, 2)),
    ])

    def stimulus(params):
        wave = bits_to_nrz(prbs7(200), BIT_RATE, amplitude=0.25,
                           samples_per_bit=16)
        return add_awgn(wave, 1e-3, seed=params["seed"])

    heights = session.sweep(grid, stimulus).values(
        lambda r: r.eye.eye_height)
    # A 1.2 m backplane must close the eye relative to 0.1 m.
    assert np.all(heights[0] > heights[1])


def test_session_sweep_rejects_unknown_structural_axis():
    session = LinkSession.from_configs()
    grid = ScenarioGrid([SweepAxis("bogus_knob", (1, 2), structural=True),
                         SweepAxis("seed", (1,))])
    with pytest.raises(KeyError):
        session.sweep(grid, lambda p: scenario_batch(1)[0])


def test_session_sweep_structural_axes_require_configs():
    session = LinkSession([GainBlock(1.0)], bit_rate=BIT_RATE)
    grid = ScenarioGrid([SweepAxis("length_m", (0.1,), structural=True),
                         SweepAxis("seed", (1,))])
    with pytest.raises(ValueError):
        session.sweep(grid, lambda p: scenario_batch(1)[0])


# -- deprecated shims ---------------------------------------------------------

def test_recover_batch_shim_warns_and_delegates():
    batch = scenario_batch(2, amplitude=0.4)
    cdr = BangBangCdr(CdrConfig(bit_rate=BIT_RATE))
    with pytest.warns(DeprecationWarning, match="recover_batch"):
        old = cdr.recover_batch(batch)
    new = stage(cdr).recover(batch)
    np.testing.assert_array_equal(old.decisions, new.decisions)
    np.testing.assert_array_equal(old.phase_track_ui, new.phase_track_ui)


def test_equalize_batch_shims_warn_and_delegate():
    batch = scenario_batch(2)
    dfe = DecisionFeedbackEqualizer(taps=[0.02], bit_rate=BIT_RATE)
    with pytest.warns(DeprecationWarning, match="equalize_batch"):
        old_decisions, old_corrected = dfe.equalize_batch(batch)
    new_decisions, new_corrected = stage(dfe).equalize(batch)
    np.testing.assert_array_equal(old_decisions, new_decisions)
    np.testing.assert_array_equal(old_corrected, new_corrected)
    with pytest.warns(DeprecationWarning, match="inner_eye_height_batch"):
        old_heights = dfe.inner_eye_height_batch(batch)
    np.testing.assert_array_equal(old_heights,
                                  stage(dfe).inner_eye_height(batch))


def test_run_link_batch_shim_warns_and_delegates():
    payload = b"shim"
    with pytest.warns(DeprecationWarning, match="run_link_batch"):
        old = run_link_batch(payload, analog_path=lambda w: w,
                             training_commas=24, training_bytes=4)
    assert old.n_scenarios == 1                # waveform path: 1-row batch
    new = run_framed_link(payload, path=lambda w: w,
                          training_commas=24, training_bytes=4)
    assert old[0].payload_received == new.payload_received
    assert old[0].cdr_slips == new.cdr_slips


def test_repro_package_never_triggers_its_own_deprecations(recwarn):
    """The repo is migrated: facade runs emit no DeprecationWarning."""
    session = LinkSession.from_configs(tx=None, channel=None,
                                       cdr=CdrConfig(bit_rate=BIT_RATE),
                                       dfe=DfeConfig(taps=(0.02,)))
    session.run_batch(scenario_batch(2))
    session.run_framed(b"quiet", training_commas=24, training_bytes=4)
    assert not [w for w in recwarn.list
                if issubclass(w.category, DeprecationWarning)]


# -- public exports -----------------------------------------------------------

def test_public_exports_cover_the_facade_and_kernel():
    import repro
    import repro.signals

    for name in ("sample_uniform", "Stage", "stage", "LinkSession",
                 "TxConfig", "ChannelConfig", "RxConfig", "DfeConfig",
                 "LinkResult", "LinkBatchResult", "run_framed_link"):
        assert name in repro.__all__, name
        assert hasattr(repro, name), name
    assert repro.sample_uniform is sample_uniform
    assert repro.signals.sample_uniform is sample_uniform
    # The kernel really is the shared interpolator.
    out = sample_uniform(np.array([0.0, 1.0]), 0.0, 1.0, 0.5)
    assert float(out) == 0.5
