"""Power/area ledger."""

import pytest

from repro.core import MM2, BudgetEntry, PowerAreaBudget


def test_entry_power():
    entry = BudgetEntry("x", current_a=10e-3, area_m2=0.001 * MM2)
    assert entry.power_w(1.8) == pytest.approx(18e-3)
    with pytest.raises(ValueError):
        entry.power_w(0.0)


def test_entry_validation():
    with pytest.raises(ValueError):
        BudgetEntry("x", current_a=-1e-3, area_m2=0.0)
    with pytest.raises(ValueError):
        BudgetEntry("x", current_a=1e-3, area_m2=-1.0)


def test_budget_totals():
    budget = PowerAreaBudget(vdd=1.8)
    budget.add("a", 10e-3, 0.01 * MM2)
    budget.add("b", 20e-3, 0.02 * MM2)
    assert budget.total_current_a() == pytest.approx(30e-3)
    assert budget.total_power_w() == pytest.approx(54e-3)
    assert budget.total_area_mm2() == pytest.approx(0.03)


def test_duplicate_names_rejected():
    budget = PowerAreaBudget()
    budget.add("a", 1e-3, 0.0)
    with pytest.raises(ValueError):
        budget.add("a", 1e-3, 0.0)


def test_breakdown_units():
    budget = PowerAreaBudget(vdd=2.0)
    budget.add("a", 5e-3, 0.004 * MM2)
    row = budget.breakdown()["a"]
    assert row["current_ma"] == pytest.approx(5.0)
    assert row["power_mw"] == pytest.approx(10.0)
    assert row["area_mm2"] == pytest.approx(0.004)


def test_merge_with_prefix():
    a = PowerAreaBudget()
    a.add("x", 1e-3, 0.0)
    b = PowerAreaBudget()
    b.add("x", 2e-3, 0.0)
    merged = a.merged(b, prefix="tx-")
    assert merged.total_current_a() == pytest.approx(3e-3)
    names = [e.name for e in merged.entries]
    assert "tx-x" in names


def test_merge_rejects_vdd_mismatch():
    a = PowerAreaBudget(vdd=1.8)
    b = PowerAreaBudget(vdd=2.5)
    with pytest.raises(ValueError):
        a.merged(b)


def test_area_reduction():
    active = PowerAreaBudget()
    active.add("core", 10e-3, 0.028 * MM2)
    spiral = PowerAreaBudget()
    spiral.add("core", 10e-3, 0.14 * MM2)
    assert active.area_reduction_vs(spiral) == pytest.approx(0.8)


def test_area_reduction_rejects_zero_baseline():
    a = PowerAreaBudget()
    a.add("x", 1e-3, 1.0)
    empty = PowerAreaBudget()
    with pytest.raises(ValueError):
        a.area_reduction_vs(empty)


def test_extend():
    budget = PowerAreaBudget()
    budget.extend([BudgetEntry("a", 1e-3, 0.0), BudgetEntry("b", 2e-3, 0.0)])
    assert len(budget.entries) == 2


def test_vdd_validation():
    with pytest.raises(ValueError):
        PowerAreaBudget(vdd=0.0)
