"""BER/bathtub estimation and AC measurement."""

import math

import numpy as np
import pytest

from repro.analysis import (
    AcMeasurement,
    BathtubCurve,
    bathtub_from_waveform,
    ber_from_eye,
    ber_to_q,
    goertzel_amplitude,
    measure_bandwidth_stimulus,
    measure_frequency_response,
    measure_gain_at,
    measure_tf,
    q_to_ber,
)
from repro.lti import GainBlock, LinearBlock, TanhLimiter, first_order_lowpass
from repro.signals import add_awgn, bits_to_nrz, prbs7


# -- q/ber -------------------------------------------------------------------

def test_q_to_ber_known_points():
    assert q_to_ber(7.034) == pytest.approx(1e-12, rel=0.05)
    assert q_to_ber(6.0) == pytest.approx(9.9e-10, rel=0.1)


def test_ber_q_roundtrip():
    for q in (3.0, 5.0, 7.0):
        assert ber_to_q(q_to_ber(q)) == pytest.approx(q, rel=1e-6)


def test_ber_q_roundtrip_extreme_q():
    # Deep into the erfc underflow region: Q=8 is BER ~6e-16, and the
    # roundtrip must survive down there without collapsing to 0.
    for q in (0.5, 1.0, 7.5, 7.9, 8.0):
        ber = q_to_ber(q)
        assert ber > 0.0
        assert ber_to_q(ber) == pytest.approx(q, rel=1e-6)
    assert q_to_ber(7.9) == pytest.approx(1.4e-15, rel=0.2)
    # Monotone through the extreme region.
    assert q_to_ber(8.0) < q_to_ber(7.5) < q_to_ber(7.0)


def test_q_validation():
    with pytest.raises(ValueError):
        q_to_ber(-1.0)
    with pytest.raises(ValueError):
        ber_to_q(0.6)


def test_ber_from_eye_improves_with_snr():
    wave = bits_to_nrz(prbs7(300), 10e9, amplitude=0.4, samples_per_bit=16)
    low_noise = add_awgn(wave, 0.01, seed=1)
    high_noise = add_awgn(wave, 0.05, seed=1)
    assert ber_from_eye(low_noise, 10e9) < ber_from_eye(high_noise, 10e9)


# -- bathtub -------------------------------------------------------------------

def test_bathtub_shape():
    wave = bits_to_nrz(prbs7(400), 10e9, amplitude=0.4, samples_per_bit=32)
    noisy = add_awgn(wave, 0.01, seed=3)
    tub = bathtub_from_waveform(noisy, 10e9)
    # BER is high at the crossing, low in the middle.
    assert tub.minimum_ber() < 1e-6
    assert tub.ber[0] > 1e-3 or tub.ber[-1] > 1e-3
    assert 0.2 < tub.best_phase_ui() < 0.8


def test_bathtub_opening_at_ber():
    wave = bits_to_nrz(prbs7(400), 10e9, amplitude=0.4, samples_per_bit=32)
    tub = bathtub_from_waveform(add_awgn(wave, 0.01, seed=5), 10e9)
    wide = tub.eye_opening_at(1e-3)
    narrow = tub.eye_opening_at(1e-12)
    assert 0.0 <= narrow <= wide <= 1.0
    with pytest.raises(ValueError):
        tub.eye_opening_at(0.9)


def test_bathtub_curve_validation():
    with pytest.raises(ValueError):
        BathtubCurve(phases_ui=np.array([0.0, 1.0]), ber=np.array([1e-3]))
    wave = bits_to_nrz(prbs7(300), 10e9, amplitude=0.4, samples_per_bit=16)
    with pytest.raises(ValueError):
        bathtub_from_waveform(wave, 10e9, n_phases=5)


# -- AC measurement -----------------------------------------------------------

def test_measure_tf():
    tf = first_order_lowpass(9.5e9, gain=100.0)
    m = measure_tf(tf)
    assert m.dc_gain_db == pytest.approx(40.0)
    assert m.bandwidth_3db_hz == pytest.approx(9.5e9, rel=0.01)
    assert m.peaking_db == pytest.approx(0.0, abs=0.01)
    assert m.gain_bandwidth_hz == pytest.approx(100 * 9.5e9, rel=0.01)


def test_goertzel_exact_tone():
    fs = 320e9
    f0 = 10e9
    t = np.arange(640) / fs
    x = 0.7 * np.sin(2 * np.pi * f0 * t)
    assert goertzel_amplitude(x, fs, f0) == pytest.approx(0.7, rel=1e-6)


def test_goertzel_rejects_other_tones():
    fs = 320e9
    t = np.arange(640) / fs
    x = np.sin(2 * np.pi * 10e9 * t)
    assert goertzel_amplitude(x, fs, 20e9) < 1e-9


def test_goertzel_validation():
    with pytest.raises(ValueError):
        goertzel_amplitude(np.zeros(4), 1e9, 1e8)
    with pytest.raises(ValueError):
        goertzel_amplitude(np.zeros(100), 1e9, 1e9)  # at Nyquist


def test_measure_gain_at_linear_block():
    block = LinearBlock(first_order_lowpass(10e9, gain=5.0))
    gain = measure_gain_at(block, 1e9, 320e9)
    assert gain == pytest.approx(5.0, rel=0.02)


def test_measured_response_matches_analytic():
    tf = first_order_lowpass(5e9, gain=3.0)
    block = LinearBlock(tf)
    freqs = np.array([1e9, 5e9, 10e9])
    measured = measure_frequency_response(block, freqs, 320e9)
    analytic = np.abs(tf.response(freqs))
    np.testing.assert_allclose(measured, analytic, rtol=0.05)


def test_stimulus_bandwidth_of_linear_block():
    block = LinearBlock(first_order_lowpass(8e9, gain=10.0))
    bw = measure_bandwidth_stimulus(block, 320e9)
    assert bw == pytest.approx(8e9, rel=0.15)


def test_stimulus_bandwidth_of_nonlinear_block():
    # The stimulus method works where the analytic TF doesn't exist:
    # measure a limiter at small signal.
    block = TanhLimiter(gain=10.0, limit=0.25)
    bw = measure_bandwidth_stimulus(block, 320e9, amplitude=1e-4)
    assert math.isinf(bw)  # memoryless: flat response


def test_flat_block_infinite_bandwidth():
    assert math.isinf(measure_bandwidth_stimulus(GainBlock(2.0), 320e9))


def test_ac_validation():
    with pytest.raises(ValueError):
        measure_gain_at(GainBlock(1.0), 1e9, 320e9, amplitude=0.0)
    with pytest.raises(ValueError):
        measure_bandwidth_stimulus(GainBlock(1.0), 320e9, f_lo=1e10,
                                   f_hi=1e9)
    with pytest.raises(ValueError):
        measure_tf(first_order_lowpass(1e9, gain=0.0))


def test_ac_measurement_dataclass():
    m = AcMeasurement(dc_gain_db=20.0, bandwidth_3db_hz=1e9, peaking_db=1.0)
    assert m.gain_bandwidth_hz == pytest.approx(10 * 1e9)
