"""WaveformBatch: API mirror of Waveform and batch-vs-serial equivalence.

The batched engine's contract is that row ``i`` of a batch pushed
through any block — including the complete paper link — is numerically
identical to pushing the same waveform through on its own.  These tests
pin that contract down, including the degenerate ``lfilter_zi`` fallback
branch (pure gains and s=0 poles).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import build_io_interface
from repro.analysis import (
    EyeDiagram,
    ber_from_eye,
    ber_from_eye_batch,
    measure_eye_batch,
    pulse_response,
    pulse_response_batch,
)
from repro.channel import BackplaneChannel
from repro.lti import (
    DelayBlock,
    GainBlock,
    LinearBlock,
    Pipeline,
    RationalTF,
    SummingNode,
    TanhLimiter,
    first_order_lowpass,
    pole_zero_tf,
)
from repro.signals import (
    NrzEncoder,
    RandomJitter,
    Waveform,
    WaveformBatch,
    add_awgn,
    add_awgn_batch,
    bits_to_nrz,
    prbs7,
)

FS = 160e9
BIT_RATE = 10e9


def make_batch(n_rows=3, n_samples=64, seed=0):
    rng = np.random.default_rng(seed)
    return WaveformBatch(rng.standard_normal((n_rows, n_samples)), FS)


# -- construction -------------------------------------------------------------

def test_stack_requires_compatible_waveforms():
    a = Waveform(np.zeros(8), FS)
    b = Waveform(np.zeros(9), FS)
    with pytest.raises(ValueError):
        WaveformBatch.stack([a, b])
    with pytest.raises(ValueError):
        WaveformBatch.stack([])
    with pytest.raises(ValueError):
        WaveformBatch.stack([a, Waveform(np.zeros(8), 2 * FS)])


def test_stack_and_rows_round_trip():
    waves = [Waveform(np.arange(5.0) + i, FS) for i in range(4)]
    batch = WaveformBatch.stack(waves)
    assert batch.n_scenarios == 4
    assert batch.n_samples == 5
    for original, row in zip(waves, batch.rows()):
        np.testing.assert_array_equal(original.data, row.data)
        assert row.sample_rate == original.sample_rate


def test_batch_rejects_1d_data():
    with pytest.raises(ValueError):
        WaveformBatch(np.zeros(8), FS)


def test_tiled_copies_one_waveform():
    wave = Waveform(np.arange(6.0), FS)
    batch = WaveformBatch.tiled(wave, 3)
    assert batch.data.shape == (3, 6)
    np.testing.assert_array_equal(batch.data[2], wave.data)


def test_noise_seed_rows_match_serial_awgn():
    wave = bits_to_nrz(prbs7(16), BIT_RATE, amplitude=0.2,
                       samples_per_bit=8)
    seeds = [11, 12, 13]
    batch = add_awgn_batch(wave, 1e-3, seeds)
    for seed, row in zip(seeds, batch.rows()):
        np.testing.assert_array_equal(
            add_awgn(wave, 1e-3, seed=seed).data, row.data
        )


def test_jittered_encode_batch_matches_serial():
    encoder = NrzEncoder(bit_rate=BIT_RATE, samples_per_bit=8,
                         amplitude=0.4)
    bits = prbs7(20)
    jitter = RandomJitter(rms_seconds=2e-12)
    offsets = jitter.offsets_batch(len(bits), BIT_RATE, seeds=[1, 2])
    batch = encoder.encode_batch(bits, offsets)
    for row, offs in zip(batch.rows(), offsets):
        np.testing.assert_array_equal(encoder.encode(bits, offs).data,
                                      row.data)


# -- API mirror ---------------------------------------------------------------

def test_indexing_and_iteration():
    batch = make_batch(3, 16)
    assert len(batch) == 3
    assert isinstance(batch[1], Waveform)
    sliced = batch[1:]
    assert isinstance(sliced, WaveformBatch)
    assert sliced.n_scenarios == 2
    assert len(list(batch)) == 3


def test_statistics_are_per_row():
    batch = WaveformBatch(np.array([[1.0, -1.0], [3.0, 3.0]]), FS)
    np.testing.assert_allclose(batch.peak_to_peak(), [2.0, 0.0])
    np.testing.assert_allclose(batch.mean(), [0.0, 3.0])
    np.testing.assert_allclose(batch.rms(), [1.0, 3.0])


def test_arithmetic_with_scalars_vectors_and_waveforms():
    batch = make_batch(3, 8)
    wave = Waveform(np.ones(8), FS)
    per_row = np.array([1.0, 2.0, 3.0])

    np.testing.assert_array_equal((batch + 1.0).data, batch.data + 1.0)
    np.testing.assert_array_equal((batch + wave).data, batch.data + 1.0)
    np.testing.assert_array_equal((batch + per_row).data,
                                  batch.data + per_row[:, None])
    np.testing.assert_array_equal((batch - batch).data,
                                  np.zeros_like(batch.data))
    np.testing.assert_array_equal((batch * 2.0).data, 2.0 * batch.data)
    np.testing.assert_array_equal((-batch).data, -batch.data)


def test_arithmetic_shape_checks():
    batch = make_batch(3, 8)
    with pytest.raises(ValueError):
        batch + np.ones(5)  # neither per-row nor per-sample
    with pytest.raises(ValueError):
        batch + make_batch(2, 8)
    with pytest.raises(ValueError):
        batch + Waveform(np.ones(9), FS)


@given(delay_ps=st.floats(min_value=0.0, max_value=400.0))
@settings(max_examples=25, deadline=None)
def test_delayed_matches_serial(delay_ps):
    batch = make_batch(4, 48, seed=3)
    delayed = batch.delayed(delay_ps * 1e-12)
    for row, out in zip(batch.rows(), delayed.rows()):
        np.testing.assert_array_equal(row.delayed(delay_ps * 1e-12).data,
                                      out.data)


def test_skip_and_slice_time_match_serial():
    batch = make_batch(3, 40)
    np.testing.assert_array_equal(
        batch.skip(7).data,
        np.stack([row.skip(7).data for row in batch.rows()]),
    )
    sliced = batch.slice_time(5 / FS, 20 / FS)
    np.testing.assert_array_equal(
        sliced.data,
        np.stack([row.slice_time(5 / FS, 20 / FS).data
                  for row in batch.rows()]),
    )
    assert sliced.t0 == batch.rows()[0].slice_time(5 / FS, 20 / FS).t0


# -- block transparency -------------------------------------------------------

@pytest.mark.parametrize("block", [
    LinearBlock(pole_zero_tf([6e9], [1.5e9], gain=2.0)),
    LinearBlock(RationalTF.constant(3.0)),    # degenerate zi: pure gain
    LinearBlock(RationalTF.integrator(1e9)),  # degenerate zi: s=0 pole
    TanhLimiter(gain=4.0, limit=0.125),
    GainBlock(-1.5),
    DelayBlock(delay_s=23e-12),
    SummingNode(branches=[GainBlock(0.5),
                          LinearBlock(first_order_lowpass(4e9))],
                weights=[1.0, -0.3]),
    SummingNode(branches=[GainBlock(2.0)], include_input=False),
])
def test_blocks_process_batches_row_identically(block):
    batch = make_batch(3, 96, seed=5)
    out = block.process(batch)
    assert isinstance(out, WaveformBatch)
    for row, out_row in zip(batch.rows(), out.rows()):
        np.testing.assert_array_equal(block.process(row).data, out_row.data)


def test_fir_preemphasis_baseline_is_batch_transparent():
    from repro.baselines import FirPreEmphasis

    ffe = FirPreEmphasis(taps=[1.0, -0.25], bit_rate=BIT_RATE)
    batch = make_batch(3, 96, seed=6)
    out = ffe.process(batch)
    for row, out_row in zip(batch.rows(), out.rows()):
        np.testing.assert_array_equal(ffe.process(row).data, out_row.data)


def test_pipeline_batch_matches_serial():
    pipe = Pipeline([
        LinearBlock(pole_zero_tf([8e9], [2e9], gain=1.5)),
        TanhLimiter(gain=3.0, limit=0.2),
        LinearBlock(first_order_lowpass(9e9)),
    ])
    batch = make_batch(4, 128, seed=9)
    out = pipe.process(batch)
    for row, out_row in zip(batch.rows(), out.rows()):
        np.testing.assert_array_equal(pipe.process(row).data, out_row.data)


def test_backplane_channel_batch_matches_serial():
    channel = BackplaneChannel(0.4)
    base = bits_to_nrz(prbs7(40), BIT_RATE, amplitude=0.25,
                       samples_per_bit=16)
    batch = WaveformBatch.stack([base * a for a in (0.5, 1.0, 1.5)])
    out = channel.process(batch)
    for row, out_row in zip(batch.rows(), out.rows()):
        np.testing.assert_allclose(channel.process(row).data, out_row.data,
                                   atol=1e-12)


# -- the headline contract: the full paper link -------------------------------

@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=5, deadline=None)
def test_full_link_batch_rows_match_single_waveform_path(seed):
    """Each row through build_io_interface() matches the serial path to
    <= 1e-12 — the tentpole equivalence guarantee."""
    rng = np.random.default_rng(seed)
    link = build_io_interface(channel=BackplaneChannel(0.2))
    base = bits_to_nrz(prbs7(36, seed=3), BIT_RATE, amplitude=0.01,
                       samples_per_bit=16)
    scales = 1.0 + 0.2 * rng.standard_normal(4)
    offsets = rng.normal(0.0, 1e-3, 4)
    waves = [base * s + o for s, o in zip(scales, offsets)]
    batch = WaveformBatch.stack(waves)
    out = link.process(batch)
    assert isinstance(out, WaveformBatch)
    for wave, out_row in zip(waves, out.rows()):
        serial = link.process(wave)
        assert np.max(np.abs(serial.data - out_row.data)) <= 1e-12


def test_full_link_batch_through_degenerate_gain_stage():
    """The degenerate-zi fallback (pure gain prepended to the link
    pipeline) stays row-exact inside a batch."""
    link = build_io_interface()
    pre = Pipeline([GainBlock(0.5), LinearBlock(RationalTF.constant(2.0))])
    base = bits_to_nrz(prbs7(30), BIT_RATE, amplitude=0.008,
                       samples_per_bit=16)
    waves = [base * s for s in (0.6, 1.0, 1.7)]
    batch = pre.process(WaveformBatch.stack(waves))
    out = link.process(batch)
    for wave, out_row in zip(waves, out.rows()):
        serial = link.process(pre.process(wave))
        assert np.max(np.abs(serial.data - out_row.data)) <= 1e-12


# -- batched analysis ---------------------------------------------------------

def test_measure_eye_batch_matches_serial_measurements():
    base = bits_to_nrz(prbs7(60), BIT_RATE, amplitude=0.3,
                       samples_per_bit=16)
    batch = WaveformBatch.stack([add_awgn(base, 5e-3, seed=s)
                                 for s in range(5)])
    batched = measure_eye_batch(batch, BIT_RATE, skip_ui=8)
    for row, measurement in zip(batch.rows(), batched):
        serial = EyeDiagram.measure_waveform(row, BIT_RATE, skip_ui=8)
        assert serial == measurement


def test_ber_from_eye_batch_matches_serial():
    base = bits_to_nrz(prbs7(60), BIT_RATE, amplitude=0.3,
                       samples_per_bit=16)
    batch = WaveformBatch.stack([add_awgn(base, 10e-3, seed=s)
                                 for s in range(3)])
    batched = ber_from_eye_batch(batch, BIT_RATE)
    for row, ber in zip(batch.rows(), batched):
        assert ber == pytest.approx(ber_from_eye(row, BIT_RATE), rel=1e-12)


def test_pulse_response_batch_matches_serial():
    system = Pipeline([LinearBlock(pole_zero_tf([7e9], [2e9])),
                       TanhLimiter(gain=2.0, limit=0.3)])
    amplitudes = (0.05, 0.2, 0.8)
    batched = pulse_response_batch(system, BIT_RATE, amplitudes,
                                   samples_per_bit=16)
    for amplitude, response in zip(amplitudes, batched):
        serial = pulse_response(system, BIT_RATE, samples_per_bit=16,
                                amplitude=amplitude)
        assert response.cursor_index == serial.cursor_index
        np.testing.assert_array_equal(response.cursors, serial.cursors)


# -- per-row interpolated sampling --------------------------------------------

def test_batch_sample_at_per_row_instants_match_serial():
    rng = np.random.default_rng(9)
    batch = WaveformBatch(rng.normal(size=(5, 64)), 16e9, t0=1e-10)
    times = batch.t0 + rng.uniform(0, 60 / 16e9, size=5)
    sampled = batch.sample_at(times)
    assert sampled.shape == (5,)
    for i in range(5):
        assert sampled[i] == float(batch[i].sample_at(times[i]))


def test_batch_sample_at_shared_scalar_and_2d_instants():
    rng = np.random.default_rng(10)
    batch = WaveformBatch(rng.normal(size=(4, 32)), 1.0)
    shared = batch.sample_at(7.25)
    assert shared.shape == (4,)
    grid = rng.uniform(0, 30, size=(4, 6))
    sampled = batch.sample_at(grid)
    assert sampled.shape == (4, 6)
    for i in range(4):
        np.testing.assert_array_equal(sampled[i],
                                      batch[i].sample_at(grid[i]))


def test_batch_sample_at_rejects_mismatched_instant_rows():
    batch = WaveformBatch(np.zeros((4, 16)), 1.0)
    with pytest.raises(ValueError):
        batch.sample_at(np.zeros(3))
    with pytest.raises(ValueError):
        batch.sample_at(np.zeros((5, 2)))


# -- batched DFE --------------------------------------------------------------

@given(n_taps=st.integers(min_value=1, max_value=4),
       ui_samples=st.sampled_from((8.0, 10.25, 12.5, 16.0)),
       extra_samples=st.integers(min_value=0, max_value=13),
       n_rows=st.integers(min_value=1, max_value=4),
       seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=30, deadline=None)
def test_dfe_equalize_batch_property_row_exact(n_taps, ui_samples,
                                               extra_samples, n_rows, seed):
    """The batched DFE dispatch is row-exact against serial equalize
    across tap counts, non-integer samples-per-UI and mixed scenario
    lengths."""
    from repro.baselines import DecisionFeedbackEqualizer
    from repro.link import stage

    rng = np.random.default_rng(seed)
    sample_rate = ui_samples * BIT_RATE
    n_samples = int(20 * ui_samples) + extra_samples
    batch = WaveformBatch(rng.standard_normal((n_rows, n_samples)),
                          sample_rate)
    dfe = DecisionFeedbackEqualizer(
        taps=0.1 * rng.standard_normal(n_taps) + 0.05,
        bit_rate=BIT_RATE,
        sample_phase_ui=float(rng.uniform(0.2, 0.8)),
    )
    decisions, corrected = stage(dfe).equalize(batch)
    heights = stage(dfe).inner_eye_height(batch, skip_bits=4)
    for i, row in enumerate(batch.rows()):
        ref_decisions, ref_corrected = dfe.equalize(row)
        np.testing.assert_array_equal(decisions[i], ref_decisions)
        np.testing.assert_array_equal(corrected[i], ref_corrected)
        assert heights[i] == dfe.inner_eye_height(row, skip_bits=4)


def test_dfe_measure_pair_rows_match():
    from repro.baselines import DecisionFeedbackEqualizer
    from repro.sweep import dfe_measure

    dfe = DecisionFeedbackEqualizer(taps=[0.04, 0.01], bit_rate=BIT_RATE)
    base = bits_to_nrz(prbs7(60), BIT_RATE, amplitude=0.4,
                       samples_per_bit=16)
    batch = WaveformBatch.stack([add_awgn(base, 5e-3, seed=s)
                                 for s in range(3)])
    measure, measure_batch = dfe_measure(dfe)
    params = [{"seed": s} for s in range(3)]
    batched = measure_batch(batch, params)
    assert batched == [measure(row, p)
                       for row, p in zip(batch.rows(), params)]

    reducer = lambda result, p: int(result[0].sum())
    measure, measure_batch = dfe_measure(dfe, reduce=reducer)
    batched = measure_batch(batch, params)
    assert batched == [measure(row, p)
                       for row, p in zip(batch.rows(), params)]


# -- batched crossing extraction and adaptation metric ------------------------

def noisy_eye_batch(n_rows=5, rms=8e-3):
    base = bits_to_nrz(prbs7(80), BIT_RATE, amplitude=0.3,
                       samples_per_bit=16)
    return WaveformBatch.stack([add_awgn(base, rms, seed=s)
                                for s in range(n_rows)])


def test_batch_crossing_extraction_rows_match_serial():
    from repro.analysis import EyeDiagramBatch

    batch = noisy_eye_batch()
    batched = EyeDiagramBatch(batch, BIT_RATE)
    per_row = batched.crossing_times_ui()
    rms = batched.jitter_rms_ui()
    pp = batched.jitter_pp_ui()
    width = batched.eye_width_ui()
    for i, row in enumerate(batch.rows()):
        serial = EyeDiagram(row, BIT_RATE)
        np.testing.assert_array_equal(per_row[i],
                                      serial.crossing_times_ui())
        assert rms[i] == serial.jitter_rms_ui()
        assert pp[i] == serial.jitter_pp_ui()
        assert width[i] == serial.eye_width_ui()


def test_batch_crossing_extraction_handles_crossing_free_rows():
    from repro.analysis import EyeDiagramBatch

    base = bits_to_nrz(prbs7(40), BIT_RATE, amplitude=0.3,
                       samples_per_bit=16)
    flat = Waveform(np.full(len(base), 0.1), base.sample_rate)
    batch = WaveformBatch.stack([base, flat])
    per_row = EyeDiagramBatch(batch, BIT_RATE).crossing_times_ui()
    assert per_row[0].size > 0
    assert per_row[1].size == 0
    assert EyeDiagramBatch(batch, BIT_RATE).jitter_pp_ui()[1] == 0.0


def test_eye_quality_metric_batch_rows_match_serial():
    from repro.channel import BackplaneChannel
    from repro.core import eye_quality_metric, eye_quality_metric_batch

    base = bits_to_nrz(prbs7(120), BIT_RATE, amplitude=0.3,
                       samples_per_bit=16)
    rows = [
        base,                                        # clean, open
        BackplaneChannel(0.6).process(base),         # degraded
        Waveform(np.zeros(len(base)), base.sample_rate),  # unmeasurable
        add_awgn(base, 0.02, seed=7),                # noisy
    ]
    batch = WaveformBatch.stack(rows)
    metrics = eye_quality_metric_batch(batch, BIT_RATE)
    assert metrics.shape == (4,)
    for i, row in enumerate(rows):
        assert metrics[i] == eye_quality_metric(row, BIT_RATE)


def test_decompose_jitter_batch_rows_match_serial():
    from repro.analysis import decompose_jitter, decompose_jitter_batch

    encoder = NrzEncoder(bit_rate=BIT_RATE, samples_per_bit=16,
                         amplitude=0.4)
    bits = prbs7(120)
    jitter = RandomJitter(rms_seconds=2e-12)
    offsets = jitter.offsets_batch(len(bits), BIT_RATE, seeds=[3, 4, 5])
    batch = encoder.encode_batch(bits, offsets)
    batched = decompose_jitter_batch(batch, BIT_RATE)
    for row, decomposition in zip(batch.rows(), batched):
        assert decomposition == decompose_jitter(row, BIT_RATE)


def test_decompose_jitter_batch_falls_back_on_non_integer_rate():
    from repro.analysis import decompose_jitter, decompose_jitter_batch

    encoder = NrzEncoder(bit_rate=BIT_RATE, samples_per_bit=16,
                         amplitude=0.4)
    bits = prbs7(120)
    jitter = RandomJitter(rms_seconds=2e-12)
    offsets = jitter.offsets_batch(len(bits), BIT_RATE, seeds=[3, 4])
    rows = [encoder.encode(bits, offs).resampled(15.5 * BIT_RATE)
            for offs in offsets]
    batch = WaveformBatch.stack(rows)
    batched = decompose_jitter_batch(batch, BIT_RATE)
    for row, decomposition in zip(batch.rows(), batched):
        assert decomposition == decompose_jitter(row, BIT_RATE)
