"""Jitter source statistics."""

import numpy as np
import pytest

from repro.signals import (
    JitterBudget,
    RandomJitter,
    SinusoidalJitter,
    dual_dirac_total_jitter,
)


def test_random_jitter_rms():
    rj = RandomJitter(rms_seconds=1e-12, seed=42)
    offsets = rj.offsets(20000, 10e9)
    assert np.std(offsets) == pytest.approx(1e-12, rel=0.05)
    assert abs(np.mean(offsets)) < 1e-13


def test_random_jitter_reproducible_with_seed():
    a = RandomJitter(1e-12, seed=7).offsets(100, 10e9)
    b = RandomJitter(1e-12, seed=7).offsets(100, 10e9)
    np.testing.assert_array_equal(a, b)


def test_random_jitter_zero_rms_is_zero():
    offsets = RandomJitter(0.0).offsets(10, 10e9)
    np.testing.assert_allclose(offsets, 0.0)


def test_random_jitter_rejects_negative():
    with pytest.raises(ValueError):
        RandomJitter(-1e-12)


def test_sinusoidal_jitter_peak_and_period():
    sj = SinusoidalJitter(peak_seconds=5e-12, frequency=1e8)
    offsets = sj.offsets(1000, 10e9)
    assert offsets.max() == pytest.approx(5e-12, rel=0.01)
    assert offsets.min() == pytest.approx(-5e-12, rel=0.01)
    # 100 MHz jitter on a 10 Gb/s clock: period = 100 bits.
    np.testing.assert_allclose(offsets[:100], offsets[100:200], atol=1e-18)


def test_sinusoidal_jitter_phase():
    sj = SinusoidalJitter(peak_seconds=1e-12, frequency=1e8,
                          phase=np.pi / 2)
    offsets = sj.offsets(10, 10e9)
    assert offsets[0] == pytest.approx(1e-12)


def test_sinusoidal_rejects_bad_args():
    with pytest.raises(ValueError):
        SinusoidalJitter(-1e-12, 1e8)
    with pytest.raises(ValueError):
        SinusoidalJitter(1e-12, 0.0)


def test_budget_sums_components():
    budget = JitterBudget(
        random=RandomJitter(1e-12, seed=1),
        sinusoidal=SinusoidalJitter(2e-12, 1e8),
    )
    total = budget.offsets(500, 10e9)
    rj = RandomJitter(1e-12, seed=1).offsets(500, 10e9)
    sj = SinusoidalJitter(2e-12, 1e8).offsets(500, 10e9)
    np.testing.assert_allclose(total, rj + sj)


def test_empty_budget():
    budget = JitterBudget()
    assert budget.is_empty()
    np.testing.assert_allclose(budget.offsets(10, 1e9), 0.0)


def test_dual_dirac_at_1e12():
    # TJ = DJ + 2*Q*RJ with Q ~ 7.03 at BER 1e-12.
    tj = dual_dirac_total_jitter(rj_rms=1e-12, dj_pp=10e-12, ber=1e-12)
    assert tj == pytest.approx(10e-12 + 2 * 7.034 * 1e-12, rel=0.01)


def test_dual_dirac_monotone_in_ber():
    tight = dual_dirac_total_jitter(1e-12, 0.0, ber=1e-15)
    loose = dual_dirac_total_jitter(1e-12, 0.0, ber=1e-9)
    assert tight > loose


def test_dual_dirac_rejects_bad_args():
    with pytest.raises(ValueError):
        dual_dirac_total_jitter(-1e-12, 0.0)
    with pytest.raises(ValueError):
        dual_dirac_total_jitter(1e-12, 0.0, ber=0.7)
