"""Backplane channel and termination models."""

import math

import numpy as np
import pytest

from repro.channel import (
    BackplaneChannel,
    ChannelParameters,
    FR4_DEFAULT,
    ReflectiveLink,
    Termination,
    cml_output_swing,
    reflection_coefficient,
    required_drive_current,
    return_loss_db,
)
from repro.signals import bits_to_nrz, prbs7


def test_loss_increases_with_frequency_and_length():
    ch = BackplaneChannel(0.5)
    f = np.array([1e9, 5e9, 10e9])
    loss = ch.loss_db(f)
    assert np.all(np.diff(loss) > 0)
    longer = BackplaneChannel(1.0)
    assert longer.loss_db(f)[1] == pytest.approx(2 * loss[1])


def test_zero_length_channel_is_transparent():
    ch = BackplaneChannel(0.0)
    w = bits_to_nrz(prbs7(50), 10e9, samples_per_bit=8)
    out = ch.process(w)
    np.testing.assert_array_equal(out.data, w.data)


def test_nyquist_loss_default_channel():
    # 0.5 m default FR-4: ~13 dB at 5 GHz.
    ch = BackplaneChannel(0.5)
    assert 10 < ch.nyquist_loss_db(10e9) < 17


def test_magnitude_matches_loss():
    ch = BackplaneChannel(0.5)
    f = np.array([5e9])
    assert ch.magnitude(f)[0] == pytest.approx(
        10 ** (-ch.loss_db(f)[0] / 20.0)
    )
    assert ch.s21_db(f)[0] == pytest.approx(-ch.loss_db(f)[0])


def test_process_attenuates_high_frequency_content():
    ch = BackplaneChannel(0.5)
    # A 5 GHz square (1010 pattern at 10 Gb/s) loses most of its swing;
    # a low-rate pattern survives.
    fast = bits_to_nrz(np.tile([1, 0], 60), 10e9, samples_per_bit=16)
    slow = bits_to_nrz(np.repeat([1, 0], 30), 1e9, samples_per_bit=16)
    # Skip the start-up region where the line still holds its idle level.
    fast_out = ch.process(fast).skip(40 * 16)
    slow_out = ch.process(slow).skip(20 * 16)
    assert fast_out.peak_to_peak() < 0.55 * fast.peak_to_peak()
    assert slow_out.peak_to_peak() > 0.8 * slow.peak_to_peak()


def test_process_is_causal():
    # The response to a step must not start before the step (beyond
    # numerical noise): minimum-phase property.
    ch = BackplaneChannel(0.5)
    bits = np.concatenate([np.zeros(20, dtype=int), np.ones(20, dtype=int)])
    w = bits_to_nrz(bits, 10e9, samples_per_bit=16, rise_time=0.0)
    out = ch.process(w)
    step_index = 20 * 16
    pre_step = out.data[: step_index - 16]
    assert np.max(np.abs(pre_step - pre_step[0])) < 0.02 * w.peak_to_peak()


def test_dc_passes_unattenuated():
    ch = BackplaneChannel(0.5)
    w = bits_to_nrz(np.ones(60, dtype=int), 10e9, samples_per_bit=8)
    out = ch.process(w)
    assert out.data[-1] == pytest.approx(w.data[-1], rel=0.02)


def test_scaled_to_loss():
    ch = BackplaneChannel(1.0).scaled_to_loss(10.0, at_hz=5e9)
    assert ch.loss_db(np.array([5e9]))[0] == pytest.approx(10.0)


def test_propagation_delay():
    ch = BackplaneChannel(0.5)
    v = FR4_DEFAULT.velocity
    assert ch.propagation_delay == pytest.approx(0.5 / v)
    assert 1e-9 < ch.propagation_delay < 5e-9  # ~3.4 ns for 0.5 m FR-4


def test_channel_parameters_validation():
    with pytest.raises(ValueError):
        ChannelParameters(k_skin=-1.0, k_dielectric=0.0)
    with pytest.raises(ValueError):
        ChannelParameters(k_skin=0.0, k_dielectric=0.0,
                          dielectric_constant=0.5)
    with pytest.raises(ValueError):
        BackplaneChannel(-1.0)


# -- terminations ------------------------------------------------------------

def test_reflection_coefficient_signs():
    assert reflection_coefficient(50.0) == 0.0
    assert reflection_coefficient(100.0) > 0
    assert reflection_coefficient(25.0) < 0
    assert reflection_coefficient(0.0) == -1.0


def test_return_loss():
    assert math.isinf(return_loss_db(50.0))
    # 10% mismatch: RL ~ 26 dB.
    assert return_loss_db(55.0) == pytest.approx(26.4, abs=0.5)


def test_cml_swing_8ma():
    # The paper's 8 mA into a doubly terminated 50-ohm line: 200 mV.
    assert cml_output_swing(8e-3) == pytest.approx(0.200)
    assert cml_output_swing(8e-3, double_terminated=False) \
        == pytest.approx(0.400)


def test_required_drive_current_inverts_swing():
    swing = cml_output_swing(8e-3)
    assert required_drive_current(swing) == pytest.approx(8e-3)


def test_termination_matching():
    assert Termination(52.0).is_matched()
    assert not Termination(80.0).is_matched()
    assert Termination(50.0).gamma == 0.0


def test_reflective_link_echo():
    link = ReflectiveLink(
        round_trip_delay=1e-9, round_trip_loss_db=6.0,
        tx=Termination(65.0), rx=Termination(65.0),
    )
    w = bits_to_nrz(np.concatenate([np.ones(5, dtype=int),
                                    np.zeros(35, dtype=int)]),
                    1e9, samples_per_bit=16, rise_time=0.0)
    out = link.process(w)
    # Echo arrives 1 ns (16 samples) after the pulse with the expected gain.
    gain = link.echo_gain
    assert gain > 0
    echo_region = out.data[16 * 6: 16 * 9]
    assert np.max(np.abs(echo_region - (-0.5))) > 0.5 * gain


def test_matched_link_has_no_echo():
    link = ReflectiveLink(
        round_trip_delay=1e-9, round_trip_loss_db=6.0,
        tx=Termination(50.0), rx=Termination(50.0),
    )
    w = bits_to_nrz(prbs7(40), 1e9, samples_per_bit=8)
    out = link.process(w)
    np.testing.assert_allclose(out.data, w.data)


def test_reflective_link_validation():
    with pytest.raises(ValueError):
        ReflectiveLink(round_trip_delay=0.0, round_trip_loss_db=6.0,
                       tx=Termination(50.0), rx=Termination(50.0))
    with pytest.raises(ValueError):
        ReflectiveLink(round_trip_delay=1e-9, round_trip_loss_db=-1.0,
                       tx=Termination(50.0), rx=Termination(50.0))


def test_swing_helpers_validation():
    with pytest.raises(ValueError):
        cml_output_swing(0.0)
    with pytest.raises(ValueError):
        required_drive_current(-0.1)
    with pytest.raises(ValueError):
        reflection_coefficient(-1.0)
