"""Sweep reliability layer: checkpoint/resume, supervised pool,
quarantine, and the deterministic fault-injection harness.

The helpers below are module-level on purpose: pool tests need
picklable callables.  ``CALLS`` counts stimulus invocations in-process
(resume tests assert journaled units are genuinely skipped).
"""

import os
import pickle
import time

import numpy as np
import pytest

from repro.lti import GainBlock
from repro.signals import Waveform
from repro.sweep import (CheckpointJournal, Count, FaultInjected, FaultRule,
                         Histogram, MeanVar, MinMax, Quantiles, ScenarioGrid,
                         SweepAxis, SweepFailure, SweepRunner, Yield,
                         inject_faults)
from repro.sweep import faults as faults_mod
from repro.sweep.checkpoint import describe_callable
from repro.sweep.runner import _has_nonfinite

FS = 160e9

CALLS = {"stimulus": 0}


def stimulus(params):
    CALLS["stimulus"] += 1
    return Waveform(np.full(16, params["level"]), FS)


def build(params):
    return GainBlock(params["gain"])


def measure(wave, params):
    return float(wave.data[0])


def measure_batch(batch, params_list):
    return [float(value) for value in batch.data[:, 0]]


def make_runner(**kwargs):
    grid = ScenarioGrid([
        SweepAxis("gain", (2.0, 3.0), structural=True),
        SweepAxis("level", tuple((i + 1) / 8 for i in range(8))),
    ])
    defaults = dict(stimulus=stimulus, build=build, measure=measure,
                    chunk_rows=2, retry_backoff_s=0.0)
    defaults.update(kwargs)
    return SweepRunner(grid, **defaults)


def passes_threshold(value, params):
    return value > 1.0


def streaming_reducers():
    """Picklable reducer set (pool tests ship the runner to workers)."""
    return {
        "n": Count(),
        "mv": MeanVar(),
        "extrema": MinMax(),
        "hist": Histogram(0.0, 3.5, n_bins=16),
        "q": Quantiles(qs=(0.1, 0.5, 0.9), lo=0.0, hi=3.5, n_bins=64),
        "yield": Yield(passes_threshold),
    }


def expected_values(runner):
    return runner.grid, np.array(
        [[g * level for level in (0.125, 0.25, 0.375, 0.5,
                                  0.625, 0.75, 0.875, 1.0)]
         for g in (2.0, 3.0)])


# -- validation (satellites) --------------------------------------------------

def test_post_init_validation():
    with pytest.raises(ValueError, match="processes"):
        make_runner(processes=-1)
    with pytest.raises(ValueError, match="timeout"):
        make_runner(timeout=0)
    with pytest.raises(ValueError, match="max_attempts"):
        make_runner(max_attempts=0)
    with pytest.raises(ValueError, match="retry_backoff_s"):
        make_runner(retry_backoff_s=-0.1)
    with pytest.raises(ValueError, match="on_error"):
        make_runner(on_error="ignore")
    # The boundary values are all legal.
    make_runner(processes=0, timeout=0.5, max_attempts=1,
                retry_backoff_s=0.0, on_error="quarantine")


def test_values_maps_failures_to_nan_and_strict_raises():
    grid = ScenarioGrid([SweepAxis("level", (0.1, 0.2, 0.3))])
    from repro.sweep import SweepResult
    failure = SweepFailure(params={"level": 0.2}, kind="exception",
                           error="boom", attempts=3)
    result = SweepResult(grid=grid,
                         params=[{"level": v} for v in (0.1, 0.2, 0.3)],
                         results=[1.0, None, 3.0], failures=[failure])
    values = result.values(lambda r: r)
    assert values[0] == 1.0 and values[2] == 3.0
    assert np.isnan(values[1])
    with pytest.raises(ValueError, match=r"1 scenario\(s\) failed.*boom"):
        result.values(lambda r: r, strict=True)
    # SweepFailure must survive a journal round-trip.
    assert pickle.loads(pickle.dumps(failure)) == failure


def test_has_nonfinite_handles_sweep_value_shapes():
    assert not _has_nonfinite(1.0)
    assert not _has_nonfinite("a string")
    assert not _has_nonfinite(None)
    assert _has_nonfinite(float("nan"))
    assert _has_nonfinite(np.inf)
    assert _has_nonfinite(np.array([1.0, np.nan]))
    assert not _has_nonfinite(np.array(["a", "b"], dtype=object))
    assert _has_nonfinite((1.0, float("inf")))
    assert _has_nonfinite(Waveform(np.array([1.0, np.nan]), FS))
    assert not _has_nonfinite(Waveform(np.ones(4), FS))


# -- fault harness ------------------------------------------------------------

def test_fault_rule_validation_and_matching():
    with pytest.raises(ValueError, match="unknown fault mode"):
        FaultRule(mode="explode")
    with pytest.raises(ValueError, match="times"):
        FaultRule(mode="raise", times=0)
    rule = FaultRule(mode="raise", si=1, rows=(5,))
    assert rule.matches(1, 4, 6)
    assert not rule.matches(0, 4, 6)   # wrong structural point
    assert not rule.matches(1, 6, 8)   # row 5 outside [6, 8)
    anywhere = FaultRule(mode="raise")
    assert anywhere.matches(7, 0, 100)


def test_plan_roundtrip_and_env_restore(tmp_path):
    rules = [FaultRule(mode="nan", rows=(2, 5), times=None),
             FaultRule(mode="hang", seconds=1.5)]
    path = faults_mod.write_plan(tmp_path / "plan.json", rules)
    assert faults_mod.read_plan(path) == rules
    before = os.environ.get(faults_mod.ENV_VAR)
    with inject_faults(rules, tmp_path / "active") as plan:
        assert os.environ[faults_mod.ENV_VAR] == str(plan)
    assert os.environ.get(faults_mod.ENV_VAR) == before


def test_claim_counts_attempts_across_calls(tmp_path):
    rule = FaultRule(mode="raise", times=2)
    plan = faults_mod.write_plan(tmp_path / "plan.json", [rule])
    fires = [faults_mod._claim(plan, 0, rule, (0, 0, 4))
             for _ in range(4)]
    assert fires == [True, True, False, False]
    # A different unit has its own counter.
    assert faults_mod._claim(plan, 0, rule, (1, 0, 4))


# -- checkpoint journal -------------------------------------------------------

def test_checkpoint_skips_journaled_units(tmp_path):
    runner = make_runner()
    CALLS["stimulus"] = 0
    first = runner.run(checkpoint_dir=tmp_path)
    calls_full = CALLS["stimulus"]
    assert calls_full == 16
    CALLS["stimulus"] = 0
    second = runner.run(checkpoint_dir=tmp_path)
    assert CALLS["stimulus"] == 0          # every unit replayed
    assert second.results == first.results
    assert second.params == first.params


def test_checkpoint_key_separates_configs(tmp_path):
    a = make_runner(chunk_rows=2)
    b = make_runner(chunk_rows=4)        # different unit boundaries
    a.run(checkpoint_dir=tmp_path)
    CALLS["stimulus"] = 0
    b.run(checkpoint_dir=tmp_path)
    assert CALLS["stimulus"] == 16       # b shares nothing with a
    keys = {p.name for p in tmp_path.iterdir()}
    assert len(keys) == 2


def test_corrupt_journal_entry_is_rerun(tmp_path):
    runner = make_runner()
    runner.run(checkpoint_dir=tmp_path)
    journal = CheckpointJournal.open(tmp_path, runner._fingerprint())
    keys = journal.unit_keys()
    assert len(journal) == len(keys) == 8   # 2 points x 4 chunks
    (journal._units / f"{keys[0]}.pkl").write_bytes(b"not a pickle")
    assert journal.load(keys[0]) is None    # corrupt -> treated missing
    CALLS["stimulus"] = 0
    runner.run(checkpoint_dir=tmp_path)
    assert CALLS["stimulus"] == 2           # only that unit re-ran


def test_abort_then_resume_is_bit_exact(tmp_path):
    runner = make_runner()
    reference = make_runner().run()
    with inject_faults([FaultRule(mode="abort", si=1, start=4)],
                       tmp_path / "faults"):
        with pytest.raises(faults_mod.SweepAbort):
            runner.run(checkpoint_dir=tmp_path / "ckpt")
    journal = CheckpointJournal.open(tmp_path / "ckpt",
                                     runner._fingerprint())
    done_before = len(journal)
    assert 0 < done_before < 8              # partial journal left behind
    CALLS["stimulus"] = 0
    resumed = runner.run(checkpoint_dir=tmp_path / "ckpt")
    assert CALLS["stimulus"] == 2 * (8 - done_before)
    assert resumed.results == reference.results
    assert resumed.params == reference.params
    assert resumed.failures == []


def test_describe_callable_is_stable_and_content_sensitive():
    assert describe_callable(None) == "None"
    assert describe_callable(measure) == describe_callable(measure)
    assert describe_callable(measure) != describe_callable(measure_batch)

    def closure_over(value):
        return lambda p: value

    assert describe_callable(closure_over(1)) \
        != describe_callable(closure_over(2))


def test_describe_callable_tolerates_empty_closure_cell():
    # A closure cell can be observed before it is bound (recursive
    # inner functions, fingerprinting mid-construction); it must
    # fingerprint as a placeholder, not crash run(checkpoint_dir=...).
    def outer():
        def fn(params):
            return inner_value
        description = describe_callable(fn)
        inner_value = 1
        assert fn(None) == inner_value
        return description

    assert "closure:" in outer()


def test_checkpoint_key_separates_failure_policy(tmp_path):
    quarantining = make_runner(on_error="quarantine", max_attempts=2)
    with inject_faults([FaultRule(mode="raise", si=0, rows=(3,),
                                  times=None)], tmp_path / "faults"):
        first = quarantining.run(checkpoint_dir=tmp_path / "ckpt")
    assert len(first.failures) == 1
    # A raise-mode runner must not inherit the quarantined journal:
    # its fingerprint differs, so everything re-runs and (faults now
    # inactive) completes clean instead of replaying a None row
    # without ever raising.
    raising = make_runner(on_error="raise", max_attempts=2)
    CALLS["stimulus"] = 0
    clean = raising.run(checkpoint_dir=tmp_path / "ckpt")
    assert CALLS["stimulus"] == 16
    assert clean.failures == []
    assert all(value is not None for value in clean.results)
    assert len({p.name for p in (tmp_path / "ckpt").iterdir()}) == 2


# -- retries and quarantine (in-process) --------------------------------------

def test_transient_fault_is_retried_clean(tmp_path):
    runner = make_runner(on_error="quarantine", max_attempts=3)
    with inject_faults([FaultRule(mode="raise", si=0, start=2, times=2)],
                       tmp_path):
        result = runner.run()
    grid, expected = expected_values(runner)
    np.testing.assert_array_equal(result.values(lambda r: r), expected)
    assert result.failures == []


def test_raise_mode_propagates_immediately(tmp_path):
    runner = make_runner(on_error="raise")
    with inject_faults([FaultRule(mode="raise", si=0, start=2, times=None)],
                       tmp_path):
        with pytest.raises(FaultInjected):
            runner.run()


def test_persistent_fault_bisects_to_single_row(tmp_path):
    runner = make_runner(on_error="quarantine", max_attempts=2)
    # Row-targeted rule keeps matching the bisected sub-units, so only
    # batch row 3 (level=0.5) of structural point 0 is quarantined.
    with inject_faults([FaultRule(mode="raise", si=0, rows=(3,),
                                  times=None)], tmp_path):
        result = runner.run()
    assert len(result.failures) == 1
    failure = result.failures[0]
    assert failure.kind == "exception"
    assert failure.params == {"gain": 2.0, "level": 0.5}
    assert failure.attempts == 2
    assert "FaultInjected" in failure.traceback
    values = result.values(lambda r: r)
    grid, expected = expected_values(runner)
    expected[0, 3] = np.nan
    np.testing.assert_array_equal(values, expected)
    with pytest.raises(ValueError, match="level.*0.5"):
        result.values(lambda r: r, strict=True)


def test_nan_guard_quarantines_poisoned_rows(tmp_path):
    runner = make_runner(on_error="quarantine", nan_guard=True,
                         max_attempts=2)
    with inject_faults([FaultRule(mode="nan", si=1, rows=(2, 5),
                                  times=None)], tmp_path):
        result = runner.run()
    assert sorted(f.params["level"] for f in result.failures) \
        == [0.375, 0.75]
    assert {f.kind for f in result.failures} == {"non-finite"}
    values = result.values(lambda r: r)
    grid, expected = expected_values(runner)
    expected[1, 2] = expected[1, 5] = np.nan
    np.testing.assert_array_equal(values, expected)


def test_nan_guard_raises_without_quarantine(tmp_path):
    runner = make_runner(on_error="raise", nan_guard=True)
    with inject_faults([FaultRule(mode="nan", si=1, rows=(2,),
                                  times=None)], tmp_path):
        with pytest.raises(ValueError, match="non-finite"):
            runner.run()


def test_nan_passes_through_without_guard(tmp_path):
    runner = make_runner()  # nan_guard=False: legacy behavior
    with inject_faults([FaultRule(mode="nan", si=1, rows=(2,),
                                  times=None)], tmp_path):
        result = runner.run()
    assert result.failures == []
    assert np.isnan(result.values(lambda r: r)[1, 2])


def test_quarantine_rows_persist_through_journal(tmp_path):
    runner = make_runner(on_error="quarantine", max_attempts=2)
    with inject_faults([FaultRule(mode="raise", si=0, rows=(3,),
                                  times=None)], tmp_path / "faults"):
        first = runner.run(checkpoint_dir=tmp_path / "ckpt")
    assert len(first.failures) == 1
    # Replay with no faults active: the quarantine is journaled, not
    # re-derived.
    CALLS["stimulus"] = 0
    replay = runner.run(checkpoint_dir=tmp_path / "ckpt")
    assert CALLS["stimulus"] == 0
    assert replay.failures == first.failures
    assert replay.results == first.results


# -- supervised pool ----------------------------------------------------------

def test_pool_matches_inprocess_results():
    reference = make_runner().run()
    pooled = make_runner(processes=2).run()
    assert pooled.results == reference.results
    assert pooled.params == reference.params


def test_pool_survives_worker_crash(tmp_path):
    runner = make_runner(processes=2, on_error="quarantine")
    with inject_faults([FaultRule(mode="crash", si=0, start=2, times=1)],
                       tmp_path):
        result = runner.run()
    reference = make_runner().run()
    assert result.failures == []            # crash was transient
    assert result.results == reference.results


def test_pool_quarantines_persistent_crash(tmp_path):
    runner = make_runner(processes=2, on_error="quarantine",
                         max_attempts=2)
    with inject_faults([FaultRule(mode="crash", si=0, rows=(3,),
                                  times=None)], tmp_path):
        result = runner.run()
    assert len(result.failures) == 1
    failure = result.failures[0]
    assert failure.kind == "crash"
    assert failure.params == {"gain": 2.0, "level": 0.5}
    grid, expected = expected_values(runner)
    expected[0, 3] = np.nan
    np.testing.assert_array_equal(result.values(lambda r: r), expected)


def test_pool_timeout_retries_hung_unit(tmp_path):
    runner = make_runner(processes=2, on_error="quarantine",
                         timeout=1.0, max_attempts=3)
    with inject_faults([FaultRule(mode="hang", si=1, start=4, times=1,
                                  seconds=30.0)], tmp_path):
        result = runner.run()
    reference = make_runner().run()
    assert result.failures == []            # hang was transient
    assert result.results == reference.results


def test_pool_quarantines_persistent_hang(tmp_path):
    runner = make_runner(processes=2, on_error="quarantine",
                         timeout=0.75, max_attempts=2, chunk_rows=8)
    with inject_faults([FaultRule(mode="hang", si=1, rows=(3,),
                                  times=None, seconds=30.0)], tmp_path):
        result = runner.run()
    assert len(result.failures) == 1
    assert result.failures[0].kind == "timeout"
    assert result.failures[0].params == {"gain": 3.0, "level": 0.5}
    grid, expected = expected_values(runner)
    expected[1, 3] = np.nan
    np.testing.assert_array_equal(result.values(lambda r: r), expected)


def test_pool_raise_mode_raises_on_persistent_crash(tmp_path):
    runner = make_runner(processes=2, on_error="raise", max_attempts=2)
    with inject_faults([FaultRule(mode="crash", si=0, rows=(3,),
                                  times=None)], tmp_path):
        with pytest.raises(RuntimeError, match="crash"):
            runner.run()


def test_pool_raise_mode_raises_promptly_on_persistent_hang(tmp_path):
    """The hung worker must be killed *before* the timeout charge
    raises; otherwise the supervisor's cleanup joins it and the sweep
    wedges for the length of the hang instead of raising."""
    runner = make_runner(processes=2, on_error="raise", timeout=0.75,
                         max_attempts=1, chunk_rows=8)
    begin = time.monotonic()
    with inject_faults([FaultRule(mode="hang", si=1, rows=(3,),
                                  times=None, seconds=60.0)], tmp_path):
        with pytest.raises(RuntimeError, match="timeout"):
            runner.run()
    assert time.monotonic() - begin < 30.0   # raised, didn't wedge


def test_pool_exception_quarantine_captures_traceback(tmp_path):
    runner = make_runner(processes=2, on_error="quarantine",
                         max_attempts=2)
    with inject_faults([FaultRule(mode="raise", si=0, rows=(3,),
                                  times=None)], tmp_path):
        result = runner.run()
    assert len(result.failures) == 1
    # The worker-side traceback travels through the _RemoteTraceback
    # cause, not the (empty) local frames.
    assert "FaultInjected" in result.failures[0].traceback


# -- end-to-end acceptance ----------------------------------------------------

def test_e2e_crash_quarantine_then_checkpoint_resume(tmp_path):
    """The acceptance scenario: a worker is killed mid-sweep, the sweep
    completes with the injected rows quarantined and healthy rows
    present; a second phase aborts mid-run and resumes from the
    journal, merging bit-exact with an uninterrupted run."""
    # Phase A: persistent crash on one row + NaN on another, under a
    # pool with quarantine; the sweep must complete.
    runner = make_runner(processes=2, on_error="quarantine",
                         nan_guard=True, max_attempts=2)
    with inject_faults([
        FaultRule(mode="crash", si=0, rows=(5,), times=None),
        FaultRule(mode="nan", si=1, rows=(2,), times=None),
    ], tmp_path / "faults_a"):
        result = runner.run(checkpoint_dir=tmp_path / "ckpt_a")
    kinds = {f.kind for f in result.failures}
    assert kinds == {"crash", "non-finite"}
    assert sorted((f.params["gain"], f.params["level"])
                  for f in result.failures) \
        == [(2.0, 0.75), (3.0, 0.375)]
    grid, expected = expected_values(runner)
    expected[0, 5] = expected[1, 2] = np.nan
    np.testing.assert_array_equal(result.values(lambda r: r), expected)

    # Replaying the journal preserves the quarantine without faults.
    replay = runner.run(checkpoint_dir=tmp_path / "ckpt_a")
    assert replay.failures == result.failures
    assert replay.results == result.results

    # Phase B: a healthy runner dies mid-sweep (abort) and resumes.
    healthy = make_runner(processes=2, on_error="quarantine")
    uninterrupted = make_runner().run()
    with inject_faults([FaultRule(mode="abort", si=1, start=4)],
                       tmp_path / "faults_b"):
        with pytest.raises(faults_mod.SweepAbort):
            healthy.run(checkpoint_dir=tmp_path / "ckpt_b")
    resumed = healthy.run(checkpoint_dir=tmp_path / "ckpt_b")
    assert resumed.results == uninterrupted.results
    assert resumed.params == uninterrupted.params
    assert resumed.failures == []


def test_e2e_streaming_kill_worker_resume_identical_aggregates(tmp_path):
    """Streaming acceptance: a pooled keep_results=False sweep loses a
    worker mid-run (transient crash), then the supervisor itself dies
    (abort) leaving a partial journal of reducer partials; the resumed
    sweep finalizes aggregates bit-identical to an uninterrupted
    in-process streaming run — partials merge in canonical unit order,
    so neither the kill, the pool's completion order, nor the resume
    can shift the result."""
    reference = make_runner(reducers=streaming_reducers(),
                            keep_results=False).run()
    runner = make_runner(processes=2, on_error="quarantine",
                         reducers=streaming_reducers(),
                         keep_results=False)
    with inject_faults([
        FaultRule(mode="crash", si=0, start=2, times=1),
        FaultRule(mode="abort", si=1, start=4),
    ], tmp_path / "faults"):
        with pytest.raises(faults_mod.SweepAbort):
            runner.run(checkpoint_dir=tmp_path / "ckpt")
    journal = CheckpointJournal.open(tmp_path / "ckpt",
                                     runner._fingerprint())
    assert 0 < len(journal) < 8          # died mid-sweep, partials kept

    resumed = runner.run(checkpoint_dir=tmp_path / "ckpt")
    assert resumed.results is None and resumed.params is None
    assert resumed.failures == []        # the crash was transient
    assert set(resumed.aggregates) == set(reference.aggregates)
    for name, expected in reference.aggregates.items():
        actual = resumed.aggregates[name]
        if hasattr(expected, "counts"):
            np.testing.assert_array_equal(actual.counts, expected.counts)
            assert (actual.underflow, actual.overflow) \
                == (expected.underflow, expected.overflow)
        elif hasattr(expected, "variance"):
            assert (actual.n, actual.mean, actual.variance) \
                == (expected.n, expected.mean, expected.variance)
        else:
            assert actual == expected, name
