"""Statistical eye/BER engine: invariants, cross-validation, wiring.

The engine computes exact ISI distributions by FFT convolution, so the
tests pin mathematical invariants (PDF normalization, monotonicity
toward the eye edges, convolution order/chunking invariance, the
NRZ == middle-PAM4-sub-eye degenerate) and cross-validate the reported
BER against the independent time-domain path in the regime both can
reach (BER >= 1e-4), for NRZ and PAM4 over several channels.
"""

import numpy as np
import pytest

import repro
from repro import (
    LinkSession,
    ScenarioGrid,
    StatEye,
    StatEyeBatchResult,
    StatEyeResult,
    SweepAxis,
    SweepRunner,
    stat_eye_measure,
    stat_eye_stimulus,
)
from repro.analysis.ber import bathtub_from_waveform, ber_from_eye
from repro.analysis.isi import PulseResponse, pulse_response
from repro.channel.backplane import BackplaneChannel
from repro.link.session import ChannelConfig, RxConfig, TxConfig
from repro.reporting import render_bathtub, render_stateye
from repro.signals.batch import WaveformBatch
from repro.signals.modulation import Nrz, Pam4, SymbolEncoder
from repro.signals.noise import add_awgn
from repro.signals.nrz import bits_to_nrz
from repro.signals.prbs import prbs7, prbs15
from repro.signals.waveform import Waveform

BIT_RATE = 10e9


def _pulse(length_m=0.3, amplitude=0.4):
    return pulse_response(BackplaneChannel(length_m), BIT_RATE,
                          amplitude=amplitude)


def _flat_pulse(amplitude, spb=8):
    """A zero-ISI pulse: one triangular UI-wide peak, zeros elsewhere."""
    data = np.zeros(6 * spb)
    peak = 3 * spb
    data[peak - spb // 2: peak + spb // 2 + 1] = amplitude * (
        1.0 - np.abs(np.arange(-(spb // 2), spb // 2 + 1)) / spb)
    return PulseResponse.from_waveform(Waveform(data, BIT_RATE * spb),
                                       BIT_RATE)


# -- invariants ---------------------------------------------------------------

def test_isi_pdf_sums_to_one():
    engine = StatEye(noise_rms=5e-3)
    voltages, pdf = engine.isi_distribution(_pulse())
    assert pdf.shape == (engine.n_phases, engine.n_voltages)
    assert np.all(pdf > -1e-12)
    np.testing.assert_allclose(pdf.sum(axis=-1), 1.0, atol=1e-12)


def test_isi_pdf_sums_to_one_pam4():
    engine = StatEye(modulation=Pam4(), noise_rms=5e-3)
    _, pdf = engine.isi_distribution(_pulse())
    np.testing.assert_allclose(pdf.sum(axis=-1), 1.0, atol=1e-12)


def test_surface_monotone_toward_eye_edges():
    # Where the eye is open the two conditional distributions are
    # separated, so moving the threshold away from the optimum can only
    # raise the BER (at closed phases the overlapping modes make the
    # surface legitimately humped, so those are excluded).
    result = StatEye(noise_rms=8e-3).analyze(_pulse())
    surf = result.ber_surface()
    checked = 0
    for p in range(result.n_phases):
        row = surf[p]
        best = int(np.argmin(row))
        if row[best] > 1e-6:
            continue
        checked += 1
        assert np.all(np.diff(row[best:]) >= -1e-12)
        assert np.all(np.diff(row[:best + 1]) <= 1e-12)
    assert checked >= result.n_phases // 4


def test_isi_spectrum_order_invariance():
    # The ISI convolution is a commutative product of per-cursor
    # factors: permuting the non-main cursors must not change it.
    engine = StatEye(n_precursors=2, n_postcursors=3, n_voltages=128)
    rng = np.random.default_rng(5)
    cursors = rng.normal(scale=0.05, size=(2, engine.n_phases, 6))
    cursors[:, :, 2] = 0.4  # main column
    dv = 0.01
    base = engine._isi_spectrum(cursors, dv)
    order = [4, 0, 5, 3, 1]
    permuted = cursors.copy()
    permuted[:, :, [0, 1, 3, 4, 5]] = cursors[:, :, order]
    np.testing.assert_allclose(engine._isi_spectrum(permuted, dv), base,
                               atol=1e-12)


def test_isi_spectrum_cursor_chunking_invariance():
    # Splitting the cursor set into two groups and multiplying their
    # spectra equals convolving everything at once (zero cursors are
    # identity factors, so zeroing a column removes it from the
    # product).
    engine = StatEye(n_precursors=2, n_postcursors=3, n_voltages=128)
    rng = np.random.default_rng(6)
    cursors = rng.normal(scale=0.04, size=(1, engine.n_phases, 6))
    cursors[:, :, 2] = 0.4
    dv = 0.01
    pre_only = cursors.copy()
    pre_only[:, :, 3:] = 0.0
    post_only = cursors.copy()
    post_only[:, :, :2] = 0.0
    np.testing.assert_allclose(
        engine._isi_spectrum(pre_only, dv) * engine._isi_spectrum(
            post_only, dv),
        engine._isi_spectrum(cursors, dv), atol=1e-12)


def test_scenario_chunking_invariance():
    pulses = [_pulse(d) for d in (0.1, 0.3, 0.5)]
    engine = StatEye(noise_rms=8e-3, rj_rms_ui=0.01, dj_pp_ui=0.04)
    whole = engine.analyze_batch(pulses)
    chunked = engine.analyze_batch(pulses, chunk_scenarios=1)
    np.testing.assert_allclose(chunked.surfaces, whole.surfaces, atol=1e-12)
    np.testing.assert_allclose(chunked.min_bers, whole.min_bers, atol=1e-15)
    np.testing.assert_allclose(chunked.bathtubs, whole.bathtubs, atol=1e-12)


def test_nrz_equals_middle_pam4_sub_eye_degenerate():
    # With zero ISI (cursor span 1 UI) an NRZ eye of swing A and the
    # middle PAM4 sub-eye of swing 3A see identical level separations
    # (A * c0), so on a pinned shared grid the surfaces must coincide.
    amplitude = 0.2
    common = dict(n_precursors=0, n_postcursors=0, noise_rms=10e-3,
                  v_half_span=0.5)
    nrz = StatEye(modulation=Nrz(), **common).analyze(
        _flat_pulse(amplitude))
    pam4 = StatEye(modulation=Pam4(), **common).analyze(
        _flat_pulse(3 * amplitude))
    np.testing.assert_array_equal(nrz.voltages, pam4.voltages)
    np.testing.assert_allclose(pam4.surfaces[1], nrz.surfaces[0],
                               atol=1e-12)


def test_batch_summaries_match_rows():
    pulses = [_pulse(d) for d in (0.2, 0.5)]
    engine = StatEye(noise_rms=8e-3)
    batch = engine.analyze_batch(pulses)
    for i, row in enumerate(batch.rows()):
        assert batch.min_bers[i] == row.ber
        assert batch.best_phases_ui[i] == row.best_phase_ui
        assert batch.eye_heights[i] == row.eye_height_at()
        assert batch.eye_widths_ui[i] == row.eye_width_ui_at()
        np.testing.assert_array_equal(batch.bathtubs[i], row.bathtub().ber)


def test_keep_surfaces_false_drops_surfaces_only():
    pulses = [_pulse(d) for d in (0.2, 0.5)]
    engine = StatEye(noise_rms=8e-3)
    full = engine.analyze_batch(pulses)
    slim = engine.analyze_batch(pulses, keep_surfaces=False)
    assert slim.surfaces is None
    np.testing.assert_array_equal(slim.min_bers, full.min_bers)
    np.testing.assert_array_equal(slim.bathtubs, full.bathtubs)
    assert slim.bathtub(0).minimum_ber() == full.bathtub(0).minimum_ber()
    with pytest.raises(ValueError, match="keep_surfaces"):
        slim.row(0)


def test_batch_concatenate_round_trip():
    pulses = [_pulse(d) for d in (0.1, 0.3, 0.5)]
    engine = StatEye(noise_rms=8e-3)
    whole = engine.analyze_batch(pulses)
    parts = [engine.analyze_batch([p]) for p in pulses]
    with pytest.raises(ValueError, match="v_half_span|grid|disagree"):
        StatEyeBatchResult.concatenate(parts)  # per-call grids differ
    pinned = StatEye(noise_rms=8e-3, v_half_span=0.6)
    parts = [pinned.analyze_batch([p]) for p in pulses]
    merged = StatEyeBatchResult.concatenate(parts)
    assert merged.n_scenarios == 3
    np.testing.assert_allclose(
        merged.min_bers, pinned.analyze_batch(pulses).min_bers, atol=1e-15)


# -- contours, bathtubs, optimum ----------------------------------------------

def test_contour_and_heights():
    result = StatEye(noise_rms=8e-3).analyze(_pulse(0.3))
    lower, upper = result.contour(1e-9)
    open_mask = np.isfinite(lower)
    assert open_mask.any()
    assert np.all(upper[open_mask] >= lower[open_mask])
    # Tighter targets can only shrink the eye.
    assert result.eye_height_at(1e-12) <= result.eye_height_at(1e-6)
    assert result.eye_width_ui_at(1e-12) <= result.eye_width_ui_at(1e-6)
    assert 0.0 < result.eye_height_at(1e-12)
    with pytest.raises(ValueError):
        result.contour(0.7)
    with pytest.raises(ValueError):
        result.ber_surface(eye=3)


def test_deep_tail_reachable():
    # The whole point: contours at 1e-15, far beyond pattern counting.
    result = StatEye(noise_rms=4e-3).analyze(_pulse(0.1))
    assert result.eye_height_at(1e-15) > 0.0
    assert result.eye_width_ui_at(1e-15) > 0.0
    tub = result.bathtub()
    assert np.all(np.isfinite(tub.ber))
    assert tub.minimum_ber() >= result.ber_floor


def test_jitter_widens_bathtub():
    pulse = _pulse(0.3)
    clean = StatEye(noise_rms=8e-3).analyze(pulse)
    jittery = StatEye(noise_rms=8e-3, rj_rms_ui=0.02,
                      dj_pp_ui=0.1).analyze(pulse)
    assert jittery.eye_width_ui_at(1e-9) < clean.eye_width_ui_at(1e-9)
    assert jittery.ber >= clean.ber


def test_pam4_has_three_sub_eyes_and_worst_is_reported():
    result = StatEye(modulation=Pam4(), noise_rms=6e-3).analyze(_pulse(0.2))
    assert result.n_eyes == 3
    worst = result.worst_eye_index()
    assert result.min_ber(worst) == max(result.min_ber(e) for e in range(3))
    # Combined BER uses all sub-eyes and can only exceed the per-eye
    # floor contribution of the worst one.
    assert result.ber > 0.0


# -- cross-validation against the time-domain path ----------------------------

@pytest.mark.parametrize("length_m,amplitude,noise_rms", [
    (0.1, 0.4, 0.05),
    (0.3, 0.4, 0.035),
    (0.5, 0.4, 0.028),
])
def test_cross_validation_nrz(length_m, amplitude, noise_rms):
    channel = BackplaneChannel(length_m)
    stat = StatEye(noise_rms=noise_rms).analyze(
        pulse_response(channel, BIT_RATE, amplitude=amplitude)).ber
    wave = channel.process(bits_to_nrz(prbs15(4000, seed=2), BIT_RATE,
                                       amplitude=amplitude,
                                       samples_per_bit=32))
    td = ber_from_eye(add_awgn(wave, noise_rms, seed=7), BIT_RATE)
    assert stat >= 1e-4 and td >= 1e-4
    assert abs(np.log10(stat) - np.log10(td)) <= 0.5


@pytest.mark.parametrize("length_m,amplitude,noise_rms", [
    (0.05, 0.4, 0.02),
    (0.1, 0.4, 0.018),
    (0.2, 0.5, 0.02),
])
def test_cross_validation_pam4(length_m, amplitude, noise_rms):
    channel = BackplaneChannel(length_m)
    stat = StatEye(modulation=Pam4(), noise_rms=noise_rms).analyze(
        pulse_response(channel, BIT_RATE, amplitude=amplitude)).ber
    encoder = SymbolEncoder(symbol_rate=BIT_RATE, modulation=Pam4(),
                            amplitude=amplitude, samples_per_symbol=32)
    wave = channel.process(encoder.encode_bits(prbs15(8000, seed=3)))
    td = ber_from_eye(add_awgn(wave, noise_rms, seed=11), BIT_RATE,
                      modulation=Pam4())
    assert stat >= 1e-4 and td >= 1e-4
    assert abs(np.log10(stat) - np.log10(td)) <= 0.5


# -- session facade -----------------------------------------------------------

def test_session_statistical_eye_matches_direct_path():
    session = LinkSession.from_configs(TxConfig(), ChannelConfig(0.3),
                                       RxConfig())
    via_session = session.statistical_eye(noise_rms=8e-3, amplitude=0.4)
    engine = StatEye(noise_rms=8e-3)
    direct = engine.analyze(pulse_response(
        session, session.bit_rate, samples_per_bit=32,
        n_lead_bits=max(4, engine.n_precursors + 4),
        n_lag_bits=max(8, engine.n_postcursors + 4), amplitude=0.4))
    assert isinstance(via_session, StatEyeResult)
    np.testing.assert_array_equal(via_session.surfaces, direct.surfaces)


def test_session_statistical_eye_engine_overrides():
    session = LinkSession.from_configs(TxConfig(), ChannelConfig(0.2),
                                       RxConfig())
    base = StatEye(noise_rms=5e-3, n_phases=32)
    result = session.statistical_eye(base, amplitude=0.4, noise_rms=20e-3)
    assert result.noise_rms == 20e-3
    assert result.n_phases == 32


# -- sweep measure pair -------------------------------------------------------

def test_stat_eye_measure_serial_batch_parity():
    engine = StatEye(noise_rms=8e-3, v_half_span=0.6)
    measure, measure_batch = stat_eye_measure(engine, BIT_RATE)
    stimulus = stat_eye_stimulus(BIT_RATE)
    channel = BackplaneChannel(0.3)
    waves = [channel.process(stimulus({"amplitude": a}))
             for a in (0.2, 0.4, 0.6)]
    serial = [measure(w, {}) for w in waves]
    batched = measure_batch(WaveformBatch.stack(waves), [{}] * 3)
    for s, b in zip(serial, batched):
        np.testing.assert_array_equal(s.voltages, b.voltages)
        np.testing.assert_allclose(s.surfaces, b.surfaces, atol=1e-12)


def test_stat_eye_measure_in_sweep_runner():
    engine = StatEye(noise_rms=8e-3, v_half_span=0.6, n_phases=16,
                     n_voltages=65)
    measure, measure_batch = stat_eye_measure(
        engine, BIT_RATE, reduce=lambda r, p: r.ber)
    grid = ScenarioGrid([SweepAxis("amplitude", [0.2, 0.4, 0.6])])
    channel = BackplaneChannel(0.3)
    result = SweepRunner(
        grid, stimulus=stat_eye_stimulus(BIT_RATE),
        build=lambda p: channel,
        measure=measure, measure_batch=measure_batch,
    ).run()
    bers = [result.results[i] for i in range(3)]
    # More swing, more margin: BER improves monotonically.
    assert bers[0] > bers[1] > bers[2]


# -- validation / exports -----------------------------------------------------

def test_engine_rejects_invalid_grids():
    with pytest.raises(ValueError, match="phase resolution"):
        StatEye(n_phases=2)
    with pytest.raises(ValueError, match="voltage resolution"):
        StatEye(n_voltages=8)
    with pytest.raises(ValueError, match="cursor span"):
        StatEye(n_precursors=-1)
    with pytest.raises(ValueError, match="cursor span"):
        StatEye(n_postcursors=-1)
    with pytest.raises(ValueError, match="noise_rms"):
        StatEye(noise_rms=-1e-3)
    with pytest.raises(ValueError, match="dj_pp_ui"):
        StatEye(dj_pp_ui=1.0)
    with pytest.raises(ValueError, match="v_half_span"):
        StatEye(v_half_span=0.0)
    with pytest.raises(ValueError, match="target_ber"):
        StatEye(target_ber=0.0)


def test_engine_rejects_bad_inputs():
    engine = StatEye(noise_rms=5e-3)
    with pytest.raises(TypeError, match="PulseResponse"):
        engine.analyze(Waveform(np.zeros(64), 320e9))
    with pytest.raises(ValueError, match="at least one"):
        engine.analyze_batch([])
    with pytest.raises(ValueError, match="chunk_scenarios"):
        engine.analyze_batch([_pulse()], chunk_scenarios=0)
    with pytest.raises(ValueError, match="too small"):
        StatEye(v_half_span=1e-4).analyze(_pulse())
    with pytest.raises(ValueError, match="identically zero"):
        StatEye().analyze(PulseResponse.from_waveform(
            Waveform(np.zeros(64), BIT_RATE * 8), BIT_RATE))


def test_top_level_exports():
    for name in ("StatEye", "StatEyeResult", "StatEyeBatchResult",
                 "stat_eye_measure", "stat_eye_stimulus"):
        assert name in repro.__all__
        assert getattr(repro, name) is not None
    assert repro.StatEye is StatEye


def test_renderers():
    result = StatEye(noise_rms=8e-3).analyze(_pulse(0.3))
    art = render_stateye(result, title="stat eye")
    assert "stat eye" in art and "BER" in art
    assert len(art.splitlines()) == 23
    tub = render_bathtub(result.bathtub(), target_ber=1e-12)
    assert "1e" in tub
    with pytest.raises(ValueError):
        render_stateye(result, width=4)
    with pytest.raises(ValueError):
        render_bathtub(result.bathtub(), target_ber=0.9)


# -- satellite regressions ----------------------------------------------------

def test_pulse_response_from_waveform_matches_measured():
    channel = BackplaneChannel(0.3)
    measured = pulse_response(channel, BIT_RATE, amplitude=0.4)
    rebuilt = PulseResponse.from_waveform(measured.wave, BIT_RATE)
    np.testing.assert_array_equal(rebuilt.cursors, measured.cursors)
    assert rebuilt.cursor_index == measured.cursor_index
    with pytest.raises(ValueError, match="integer multiple"):
        PulseResponse.from_waveform(Waveform(np.ones(64), 1.5 * BIT_RATE),
                                    BIT_RATE)


def test_modulation_aware_isi_bounds():
    pulse = _pulse(0.5)
    # Two-level default is the historical formula, bit for bit.
    others = np.concatenate([pulse.precursors(), pulse.postcursors()])
    assert pulse.isi_sum() == float(np.sum(np.abs(others)))
    assert pulse.worst_case_opening() == pulse.main_cursor - pulse.isi_sum()
    # NRZ levels span 1.0, so the modulation-aware forms agree with it.
    assert pulse.isi_sum(Nrz()) == pytest.approx(pulse.isi_sum())
    assert pulse.worst_case_opening(Nrz()) == pytest.approx(
        pulse.worst_case_opening())
    # A PAM4 inner eye starts with a third of the separation but eats
    # the same ISI: its bound must be strictly tighter.
    assert pulse.worst_case_opening(Pam4()) < pulse.worst_case_opening()
    assert pulse.worst_case_opening(Pam4()) == pytest.approx(
        pulse.main_cursor / 3.0 - pulse.isi_sum(Pam4()))


def test_bathtub_near_closed_eye_stays_finite():
    # Heavy noise leaves few clean crossings per side; the dual-Dirac
    # fit must fall back to pooled statistics, never emit NaN/inf.
    wave = bits_to_nrz(prbs7(400, seed=1), BIT_RATE, amplitude=0.4,
                       samples_per_bit=32)
    noisy = add_awgn(wave, 0.12, seed=9)
    tub = bathtub_from_waveform(noisy, BIT_RATE)
    assert np.all(np.isfinite(tub.ber))
    assert np.all(tub.ber <= 0.5)
    assert tub.minimum_ber() > 1e-12  # nearly closed, not pristine
