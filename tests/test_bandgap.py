"""Beta-multiplier voltage reference: the paper's three claims."""

import pytest

from repro._units import celsius_to_kelvin
from repro.core import BetaMultiplierReference


@pytest.fixture(scope="module")
def bmvr():
    return BetaMultiplierReference()


def test_reference_voltage_is_vth_plus_vov(bmvr):
    v = bmvr.reference_voltage()
    assert bmvr.tech.vth_n < v < bmvr.tech.vdd / 2


def test_bias_current_formula(bmvr):
    # I = 2 (1 - 1/sqrt(K))^2 / (beta R^2), K = 4 -> (1/2)^2.
    current = bmvr.bias_current()
    beta = bmvr.tech.u_n_cox * bmvr.width / bmvr.length
    expected = 2 * 0.25 / (beta * bmvr.resistance**2)
    assert current == pytest.approx(expected)


def test_temperature_coefficient_below_550ppm(bmvr):
    # The paper: "maintaining a temperature coefficient below 550 ppm/C".
    assert bmvr.temperature_coefficient_ppm(-40.0, 125.0) < 550.0


def test_tc_compensation_mechanism():
    # Without the resistor TC the drift is much worse: the compensation
    # is real, not accidental.
    import dataclasses

    uncompensated = BetaMultiplierReference(resistance_tc=0.0)
    compensated = BetaMultiplierReference()
    assert compensated.temperature_coefficient_ppm() \
        < uncompensated.temperature_coefficient_ppm()
    del dataclasses


def test_supply_sensitivity_below_26mv_per_v(bmvr):
    # The paper: "power supply sensitivity under 26 mV/V".
    assert bmvr.supply_sensitivity_mv_per_v(1.6, 2.0) < 26.0


def test_supply_sensitivity_measured_matches_model(bmvr):
    assert bmvr.supply_sensitivity_mv_per_v() == pytest.approx(
        bmvr.supply_sensitivity * 1e3, rel=1e-6
    )


def test_trim_within_10mv(bmvr):
    # The paper: "tuned to within 10 mV of a desired value".
    nominal = bmvr.reference_voltage()
    for offset in (-0.025, -0.01, 0.0, 0.01, 0.025):
        _, error = bmvr.trim_to(nominal + offset)
        assert abs(error) <= 10e-3


def test_trim_codes_are_monotone(bmvr):
    volts = [ref.reference_voltage() for ref in bmvr.trim_codes(4)]
    assert volts == sorted(volts)


def test_trimmed_scales_resistance(bmvr):
    up = bmvr.trimmed(1.05)
    assert up.resistance == pytest.approx(1.05 * bmvr.resistance)
    with pytest.raises(ValueError):
        bmvr.trimmed(0.0)


def test_tail_current_stable_over_temperature(bmvr):
    # Beta-multiplier bias is mildly PTAT (constant-gm, not constant-I):
    # tails stay within ~20 % from -40 to 125 C, versus the ~2x swing an
    # unregulated square-law bias would suffer.
    nominal = 2e-3
    cold = bmvr.tail_current_for(nominal, celsius_to_kelvin(-40.0))
    hot = bmvr.tail_current_for(nominal, celsius_to_kelvin(125.0))
    assert cold == pytest.approx(nominal, rel=0.20)
    assert hot == pytest.approx(nominal, rel=0.20)


def test_constant_gm_property(bmvr):
    # The mirrored gm depends only on R: at fixed R it is temperature
    # independent by construction.
    gm = bmvr.mirrored_gm()
    assert gm == pytest.approx(2 * 0.5 / bmvr.resistance)
    with pytest.raises(ValueError):
        bmvr.mirrored_gm(0.0)


def test_tail_current_stable_over_supply(bmvr):
    nominal = 2e-3
    low = bmvr.tail_current_for(nominal, vdd=1.6)
    high = bmvr.tail_current_for(nominal, vdd=2.0)
    assert low == pytest.approx(nominal, rel=0.15)
    assert high == pytest.approx(nominal, rel=0.15)


def test_supply_current_small(bmvr):
    assert bmvr.supply_current < 1e-3


def test_validation():
    with pytest.raises(ValueError):
        BetaMultiplierReference(mirror_ratio=1.0)
    with pytest.raises(ValueError):
        BetaMultiplierReference(resistance=0.0)
    with pytest.raises(ValueError):
        BetaMultiplierReference(trim_step_fraction=0.5)
    with pytest.raises(ValueError):
        BetaMultiplierReference().trim_to(-1.0)
    with pytest.raises(ValueError):
        BetaMultiplierReference().tail_current_for(0.0)
    with pytest.raises(ValueError):
        BetaMultiplierReference().temperature_coefficient_ppm(100.0, 0.0)
