"""Sweep subsystem: grid geometry, axis partitioning, runner equivalence."""

import numpy as np
import pytest

from repro.analysis import measure_eye_batch
from repro.lti import GainBlock, LinearBlock, Pipeline, TanhLimiter, \
    first_order_lowpass
from repro.signals import Waveform, bits_to_nrz, prbs7
from repro.sweep import ScenarioGrid, SweepAxis, SweepRunner

BIT_RATE = 10e9
FS = 160e9


# -- grid ---------------------------------------------------------------------

def test_axis_validation():
    with pytest.raises(ValueError):
        SweepAxis("empty", ())
    with pytest.raises(ValueError):
        SweepAxis("", (1,))
    assert len(SweepAxis("x", (1, 2, 3))) == 3


def test_grid_shape_and_partition():
    grid = ScenarioGrid([
        SweepAxis("corner", ("ss", "tt", "ff"), structural=True),
        SweepAxis("seed", (0, 1, 2, 3)),
        SweepAxis("amplitude", (0.1, 0.2)),
    ])
    assert grid.shape == (3, 4, 2)
    assert grid.n_scenarios == 24
    assert [a.name for a in grid.structural_axes()] == ["corner"]
    assert [a.name for a in grid.batch_axes()] == ["seed", "amplitude"]
    assert grid.n_batch_scenarios() == 8
    assert len(list(grid.structural_points())) == 3
    assert len(list(grid.batch_points())) == 8


def test_grid_rejects_duplicate_names():
    with pytest.raises(ValueError):
        ScenarioGrid([SweepAxis("x", (1,)), SweepAxis("x", (2,))])
    with pytest.raises(ValueError):
        ScenarioGrid([])


def test_points_order_is_row_major_and_flat_index_inverts_it():
    grid = ScenarioGrid([
        SweepAxis("a", (10, 20), structural=True),
        SweepAxis("b", ("x", "y", "z")),
    ])
    points = list(grid.points())
    assert points[0] == {"a": 10, "b": "x"}
    assert points[1] == {"a": 10, "b": "y"}
    assert points[3] == {"a": 20, "b": "x"}
    for i, point in enumerate(points):
        assert grid.flat_index(point) == i


def test_batch_points_slice_matches_enumeration():
    grid = ScenarioGrid([
        SweepAxis("corner", ("ss", "tt"), structural=True),
        SweepAxis("seed", (0, 1, 2)),
        SweepAxis("amplitude", (0.1, 0.2)),
    ])
    dense = list(grid.batch_points())
    for start, stop in [(0, 6), (0, 0), (2, 5), (4, 99), (-3, 2), (6, 6)]:
        assert grid.batch_points_slice(start, stop) == dense[
            max(0, start):max(0, stop)]
    # All-structural grids have the single empty batch point.
    solo = ScenarioGrid([SweepAxis("corner", ("ss",), structural=True)])
    assert solo.batch_points_slice(0, 1) == [{}]
    assert solo.batch_points_slice(1, 2) == []


def test_flat_index_validation():
    grid = ScenarioGrid([SweepAxis("a", (1, 2))])
    with pytest.raises(KeyError):
        grid.flat_index({"b": 1})
    with pytest.raises(ValueError):
        grid.flat_index({"a": 99})


# -- runner -------------------------------------------------------------------

def _stimulus(params):
    base = bits_to_nrz(prbs7(24, seed=2), BIT_RATE,
                       amplitude=params["amplitude"], samples_per_bit=16)
    return base


def _build(params):
    return Pipeline([
        LinearBlock(first_order_lowpass(params["pole_hz"], gain=2.0)),
        TanhLimiter(gain=3.0, limit=0.4),
    ])


def test_run_matches_run_serial_exactly():
    grid = ScenarioGrid([
        SweepAxis("pole_hz", (4e9, 8e9), structural=True),
        SweepAxis("amplitude", (0.05, 0.1, 0.3)),
    ])
    runner = SweepRunner(grid, stimulus=_stimulus, build=_build)
    batched = runner.run()
    serial = runner.run_serial()
    assert len(batched) == len(serial) == 6
    for p_b, p_s, r_b, r_s in zip(batched.params, serial.params,
                                  batched.results, serial.results):
        assert p_b == p_s
        assert np.max(np.abs(r_b.data - r_s.data)) <= 1e-12


def test_run_with_measure_and_values_reshape():
    grid = ScenarioGrid([
        SweepAxis("pole_hz", (4e9, 8e9), structural=True),
        SweepAxis("amplitude", (0.05, 0.1, 0.3)),
    ])
    runner = SweepRunner(
        grid, stimulus=_stimulus, build=_build,
        measure=lambda wave, params: float(np.ptp(wave.data)),
    )
    result = runner.run()
    swings = result.values(lambda v: v)
    assert swings.shape == (2, 3)
    # Larger input amplitude -> larger output swing, at every pole.
    assert np.all(np.diff(swings, axis=1) > 0)
    assert result.along("amplitude") == (0.05, 0.1, 0.3)
    with pytest.raises(KeyError):
        result.along("nope")


def test_measure_batch_fast_path_matches_per_row_measure():
    grid = ScenarioGrid([SweepAxis("amplitude", (0.1, 0.2, 0.4))])
    stimulus = lambda p: bits_to_nrz(prbs7(60, seed=1), BIT_RATE,
                                     amplitude=p["amplitude"],
                                     samples_per_bit=16)
    build = lambda p: GainBlock(2.0)
    from repro.analysis import EyeDiagram
    batched = SweepRunner(
        grid, stimulus=stimulus, build=build,
        measure_batch=lambda batch, _:
            measure_eye_batch(batch, BIT_RATE, skip_ui=8),
    ).run()
    per_row = SweepRunner(
        grid, stimulus=stimulus, build=build,
        measure=lambda wave, _:
            EyeDiagram.measure_waveform(wave, BIT_RATE, skip_ui=8),
    ).run()
    assert batched.results == per_row.results


def test_measurement_only_sweep_without_build():
    grid = ScenarioGrid([SweepAxis("amplitude", (0.1, 0.5))])
    result = SweepRunner(
        grid,
        stimulus=lambda p: Waveform(
            np.full(8, p["amplitude"]), FS),
        measure=lambda wave, p: float(wave.mean()),
    ).run()
    assert result.results == [pytest.approx(0.1), pytest.approx(0.5)]


def test_serial_uses_measure_batch_when_no_scalar_measure():
    grid = ScenarioGrid([SweepAxis("amplitude", (0.1, 0.2))])
    runner = SweepRunner(
        grid,
        stimulus=lambda p: bits_to_nrz(prbs7(60, seed=1), BIT_RATE,
                                       amplitude=p["amplitude"],
                                       samples_per_bit=16),
        measure_batch=lambda batch, _:
            measure_eye_batch(batch, BIT_RATE, skip_ui=8),
    )
    assert runner.run().results == runner.run_serial().results


def test_structural_only_grid_runs_one_scenario_per_point():
    grid = ScenarioGrid([
        SweepAxis("gain", (1.0, 2.0, 3.0), structural=True),
    ])
    result = SweepRunner(
        grid,
        stimulus=lambda p: Waveform(np.ones(8), FS),
        build=lambda p: GainBlock(p["gain"]),
        measure=lambda wave, p: float(wave.data[0]),
    ).run()
    assert result.results == [1.0, 2.0, 3.0]


def test_duplicate_axis_values_keep_every_scenario():
    # Quantized Monte Carlo draws can repeat; each point must keep its
    # own slot (results are scattered positionally, not by value).
    grid = ScenarioGrid([
        SweepAxis("gain", (2.0, 2.0), structural=True),
        SweepAxis("level", (0.5, 0.5, 1.0)),
    ])
    result = SweepRunner(
        grid,
        stimulus=lambda p: Waveform(np.full(8, p["level"]), FS),
        build=lambda p: GainBlock(p["gain"]),
        measure=lambda wave, p: float(wave.data[0]),
    ).run()
    assert None not in result.params
    assert result.results == [1.0, 1.0, 2.0, 1.0, 1.0, 2.0]


def test_process_pool_falls_back_on_unpicklable_callables():
    grid = ScenarioGrid([
        SweepAxis("gain", (1.0, 2.0), structural=True),
    ])
    # Lambdas cannot cross a process boundary; the runner must still
    # deliver correct results in-process — but loudly, naming the
    # callables that blocked the pool.
    runner = SweepRunner(
        grid,
        stimulus=lambda p: Waveform(np.ones(8), FS),
        build=lambda p: GainBlock(p["gain"]),
        measure=lambda wave, p: float(wave.data[0]),
        processes=2,
    )
    with pytest.warns(RuntimeWarning, match="stimulus, build, measure"):
        result = runner.run()
    assert result.results == [1.0, 2.0]


def test_pool_probe_does_not_swallow_non_pickling_errors():
    class ExplodingState:
        def __call__(self, params):
            return Waveform(np.ones(8), FS)

        def __getstate__(self):
            raise ValueError("stateful runner refused serialization")

    runner = SweepRunner(
        ScenarioGrid([SweepAxis("gain", (1.0, 2.0), structural=True)]),
        stimulus=ExplodingState(),
        measure=lambda wave, p: float(wave.data[0]),
        processes=2,
    )
    # A __getstate__ that raises a non-pickling error is a bug in the
    # user's object, not an unpicklable callable: it must propagate.
    with pytest.raises(ValueError, match="refused serialization"):
        runner.run()


def test_serial_measure_batch_rebuilds_single_row_batches():
    # run_serial has no batch: it must wrap each processed waveform in
    # a one-row WaveformBatch preserving sample_rate and t0.
    from repro.signals.batch import WaveformBatch

    seen = []

    def spy_measure_batch(batch, params_list):
        assert isinstance(batch, WaveformBatch)
        assert batch.n_scenarios == 1
        assert len(params_list) == 1
        seen.append((batch.sample_rate, batch.t0))
        return [float(batch.data[0, 0])]

    grid = ScenarioGrid([SweepAxis("level", (0.25, 0.75))])
    runner = SweepRunner(
        grid,
        stimulus=lambda p: Waveform(np.full(8, p["level"]), FS, t0=3e-9),
        measure_batch=spy_measure_batch,
    )
    result = runner.run_serial()
    assert result.results == [0.25, 0.75]
    assert seen == [(FS, 3e-9)] * 2


# -- closed-loop CDR measure path ---------------------------------------------

def test_closed_loop_cdr_measure_batched_matches_serial():
    from repro.cdr import CdrConfig, CdrResult
    from repro.signals import NrzEncoder, RandomJitter
    from repro.sweep import closed_loop_cdr_measure

    n_bits = 200
    bits = prbs7(n_bits)
    encoder = NrzEncoder(bit_rate=BIT_RATE, samples_per_bit=8,
                         amplitude=0.4)

    def stimulus(params):
        jitter = RandomJitter(2e-12, seed=params["seed"])
        return encoder.encode(
            bits, edge_offsets=jitter.offsets(n_bits, BIT_RATE))

    grid = ScenarioGrid([SweepAxis("seed", tuple(range(1, 9)))])
    measure, measure_batch = closed_loop_cdr_measure(
        CdrConfig(bit_rate=BIT_RATE, kp=8e-3))
    runner = SweepRunner(grid, stimulus=stimulus, measure=measure,
                         measure_batch=measure_batch)

    batched = runner.run()
    serial = runner.run_serial()
    assert len(batched.results) == grid.n_scenarios
    for from_batch, reference in zip(batched.results, serial.results):
        assert isinstance(from_batch, CdrResult)
        np.testing.assert_array_equal(from_batch.decisions,
                                      reference.decisions)
        np.testing.assert_array_equal(from_batch.phase_track_ui,
                                      reference.phase_track_ui)
        assert from_batch.locked_at_bit == reference.locked_at_bit
        assert from_batch.slips == reference.slips


def test_closed_loop_cdr_measure_reduce_and_n_bits():
    from repro.cdr import CdrConfig
    from repro.sweep import closed_loop_cdr_measure

    grid = ScenarioGrid([SweepAxis("amplitude", (0.2, 0.4, 0.8))])

    def stimulus(params):
        return bits_to_nrz(prbs7(200), BIT_RATE,
                           amplitude=params["amplitude"],
                           samples_per_bit=8)

    measure, measure_batch = closed_loop_cdr_measure(
        CdrConfig(bit_rate=BIT_RATE, kp=8e-3), n_bits=160,
        reduce=lambda r, p: (p["amplitude"], len(r.decisions),
                             r.is_locked))
    runner = SweepRunner(grid, stimulus=stimulus, measure=measure,
                         measure_batch=measure_batch)
    batched = runner.run()
    assert batched.results == runner.run_serial().results
    for (amplitude, n_decisions, locked), params in zip(batched.results,
                                                        batched.params):
        assert amplitude == params["amplitude"]
        assert n_decisions == 160
        assert locked


# -- DFE measure path ---------------------------------------------------------

def test_dfe_measure_sweep_batched_matches_serial():
    from repro.baselines import DecisionFeedbackEqualizer
    from repro.channel import BackplaneChannel
    from repro.signals import add_awgn
    from repro.sweep import dfe_measure

    channel = BackplaneChannel(0.4)
    base = bits_to_nrz(prbs7(80), BIT_RATE, amplitude=1.0,
                       samples_per_bit=16)

    def stimulus(params):
        return add_awgn(base * params["amplitude"], 5e-3,
                        seed=params["seed"])

    grid = ScenarioGrid([
        SweepAxis("amplitude", (0.8, 1.0)),
        SweepAxis("seed", tuple(range(1, 5))),
    ])
    dfe = DecisionFeedbackEqualizer(taps=[0.05, 0.01], bit_rate=BIT_RATE)
    measure, measure_batch = dfe_measure(dfe)
    runner = SweepRunner(grid, stimulus=stimulus, build=lambda p: channel,
                         measure=measure, measure_batch=measure_batch)

    batched = runner.run()
    serial = runner.run_serial()
    assert batched.results == serial.results
    assert all(isinstance(height, float) for height in batched.results)


def test_dfe_measure_reduce_hook():
    from repro.baselines import DecisionFeedbackEqualizer
    from repro.sweep import dfe_measure

    base = bits_to_nrz(prbs7(60), BIT_RATE, amplitude=0.4,
                       samples_per_bit=16)
    grid = ScenarioGrid([SweepAxis("scale", (0.5, 1.0, 1.5))])
    dfe = DecisionFeedbackEqualizer(taps=[0.03], bit_rate=BIT_RATE)
    measure, measure_batch = dfe_measure(
        dfe, reduce=lambda result, params: int(result[0].sum()))
    runner = SweepRunner(grid,
                         stimulus=lambda p: base * p["scale"],
                         measure=measure, measure_batch=measure_batch)
    batched = runner.run()
    assert batched.results == runner.run_serial().results
    assert all(isinstance(value, int) for value in batched.results)
