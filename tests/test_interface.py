"""Interface assemblies: the paper's calibrated design point."""

import numpy as np
import pytest

from repro import (
    BackplaneChannel,
    bits_to_nrz,
    build_input_interface,
    build_io_interface,
    build_output_interface,
    prbs7,
)
from repro.analysis import EyeDiagram


# -- input interface -----------------------------------------------------------

def test_rx_dc_gain_is_paper_40db(rx_interface):
    assert rx_interface.dc_gain_db() == pytest.approx(40.0, abs=2.5)


def test_rx_bandwidth_is_paper_9p5ghz(rx_interface):
    assert rx_interface.bandwidth_3db() == pytest.approx(9.5e9, rel=0.10)


def test_rx_output_swing_is_paper_250mv(rx_interface):
    assert rx_interface.output_swing == pytest.approx(0.25)


def test_rx_small_signal_stable(rx_interface):
    assert rx_interface.small_signal_tf().is_stable()


def test_rx_without_equalizer_loses_gain(rx_interface):
    bypassed = rx_interface.without_equalizer()
    assert not bypassed.equalizer_enabled
    assert bypassed.dc_gain_db() < rx_interface.dc_gain_db() - 4.0


def test_rx_budget_matches_paper_area(rx_interface):
    budget = rx_interface.budget()
    assert budget.total_area_mm2() == pytest.approx(0.02, rel=0.01)


def test_rx_pipeline_has_equalizer_plus_la_stages(rx_interface):
    assert len(rx_interface.to_pipeline()) == 7  # eq + 6 LA stages
    assert len(rx_interface.without_equalizer().to_pipeline()) == 6


def test_rx_processes_4mv_to_full_swing(rx_interface, small_wave):
    out = rx_interface.process(small_wave)
    measurement = EyeDiagram.measure_waveform(out, 10e9)
    assert measurement.is_open
    assert measurement.eye_amplitude > 0.6 * rx_interface.output_swing


# -- output interface ---------------------------------------------------------

def test_tx_final_stage_is_8ma(tx_interface):
    assert tx_interface.output_current == pytest.approx(8e-3)


def test_tx_swing_200mv_into_double_terminated_line(tx_interface):
    assert tx_interface.output_swing_pp == pytest.approx(0.2)


def test_tx_bandwidth(tx_interface):
    assert tx_interface.bandwidth_3db() > 7e9


def test_tx_budget_matches_paper_area(tx_interface):
    assert tx_interface.budget().total_area_mm2() == pytest.approx(
        0.008, rel=0.01
    )


def test_tx_peaking_boosts_edges(tx_interface, prbs_wave):
    peaked = tx_interface.process(prbs_wave)
    plain = tx_interface.without_peaking().process(prbs_wave)
    assert peaked.peak_to_peak() > 1.05 * plain.peak_to_peak()


def test_tx_pipeline_order(tx_interface):
    names = [block.name for block in tx_interface.to_pipeline()]
    assert names[0] == "level-shifter"
    assert names[-1] == "voltage-peaking"


# -- full link -----------------------------------------------------------------

def test_total_power_near_70mw(io_link):
    power_mw = io_link.budget().total_power_w() * 1e3
    assert power_mw == pytest.approx(70.0, rel=0.10)


def test_total_area_is_paper_0p028mm2(io_link):
    assert io_link.budget().total_area_mm2() == pytest.approx(0.028,
                                                              rel=0.01)


def test_link_recovers_prbs_through_channel(io_link, prbs_wave):
    out = io_link.process(prbs_wave)
    measurement = EyeDiagram.measure_waveform(out, 10e9, skip_ui=16)
    assert measurement.is_open
    assert measurement.eye_height > 0.3 * io_link.input_interface.output_swing


def test_link_receive_only_path(io_link, small_wave):
    out = io_link.receive_only(small_wave)
    assert EyeDiagram.measure_waveform(out, 10e9).is_open


def test_build_io_interface_flags():
    link = build_io_interface(peaking_enabled=False, equalizer_enabled=False)
    assert not link.output_interface.peaking.enabled
    assert not link.input_interface.equalizer_enabled
    assert link.channel is None


def test_link_output_data_matches_input_bits(io_link):
    # End-to-end data integrity: decision-sample the output and compare
    # against the transmitted pattern (allowing for pipeline latency).
    bits = prbs7(240)
    wave = bits_to_nrz(bits, 10e9, amplitude=0.25, samples_per_bit=16)
    out = io_link.process(wave)
    spb = 16
    data = out.data
    best_errors = None
    # Search latency up to 8 UI and pick the best alignment.
    for lag_ui in range(0, 8):
        for phase in range(spb):
            start = lag_ui * spb + phase
            samples = data[start::spb][: len(bits) - 16]
            decisions = (samples > 0).astype(int)
            reference = bits[: len(decisions)]
            errors = int(np.sum(decisions != reference))
            if best_errors is None or errors < best_errors:
                best_errors = errors
    assert best_errors <= 2  # allow edge-of-pattern artifacts
