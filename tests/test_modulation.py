"""The modulation layer: alphabets, Gray coding, slicing, encoding.

The refactor contract: a :class:`Modulation` owns the level alphabet
(normalized to a unit peak-to-peak swing), the Gray bit mapping, and the
decision thresholds; :class:`SymbolEncoder` renders any alphabet with
the analog edge model the NRZ encoder always used, and the NRZ shim is
bit-identical to the pre-refactor encoder.
"""

import dataclasses

import numpy as np
import pytest

from repro.analysis import (
    ber_from_measurement,
    ber_from_q_factors,
    q_to_ber,
    ser_to_ber,
)
from repro.analysis.eye import EyeMeasurement
from repro.signals import (
    Modulation,
    Nrz,
    NrzEncoder,
    Pam4,
    RandomJitter,
    SymbolEncoder,
    bits_to_nrz,
    bits_to_pam4,
)


# ---------------------------------------------------------------------------
# The alphabet.
# ---------------------------------------------------------------------------

def test_nrz_alphabet():
    nrz = Nrz()
    assert nrz.n_levels == 2
    assert nrz.n_eyes == 1
    assert nrz.bits_per_symbol == 1
    assert nrz.levels == (-0.5, 0.5)
    assert nrz.thresholds == (0.0,)
    assert nrz.center_threshold_index == 0
    assert nrz.gray_codes == (0, 1)


def test_pam4_alphabet():
    pam4 = Pam4()
    assert pam4.n_levels == 4
    assert pam4.n_eyes == 3
    assert pam4.bits_per_symbol == 2
    # Unit peak-to-peak swing, equidistant levels.
    np.testing.assert_allclose(pam4.levels, [-0.5, -1 / 6, 1 / 6, 0.5])
    np.testing.assert_allclose(pam4.thresholds, [-1 / 3, 0.0, 1 / 3])
    # The middle eye sits exactly at zero: the CDR's edge threshold.
    assert pam4.thresholds[pam4.center_threshold_index] == 0.0
    assert pam4.gray_codes == (0, 1, 3, 2)


def test_modulation_validation():
    with pytest.raises(ValueError):
        Modulation("bad", (0.5,))            # fewer than 2 levels
    with pytest.raises(ValueError):
        Modulation("bad", (-0.5, 0.0, 0.5))  # not a power of two
    with pytest.raises(ValueError):
        Modulation("bad", (0.5, -0.5))       # not increasing
    with pytest.raises(ValueError):
        Modulation("bad", (-0.5, -0.5))      # not strictly increasing


def test_modulation_is_hashable_and_comparable():
    assert Nrz() == Nrz()
    assert Pam4() == Pam4()
    assert Nrz() != Pam4()
    assert len({Nrz(), Nrz(), Pam4()}) == 2


def test_level_and_threshold_scaling():
    pam4 = Pam4()
    np.testing.assert_allclose(pam4.level_values(0.6),
                               [-0.3, -0.1, 0.1, 0.3])
    np.testing.assert_allclose(pam4.threshold_values(0.6),
                               [-0.2, 0.0, 0.2])


# ---------------------------------------------------------------------------
# Gray coding.
# ---------------------------------------------------------------------------

def test_gray_adjacent_symbols_differ_in_one_bit():
    for mod in (Nrz(), Pam4(), Modulation("pam8", tuple(
            np.linspace(-0.5, 0.5, 8)))):
        codes = mod.gray_codes
        for a, b in zip(codes, codes[1:]):
            assert bin(a ^ b).count("1") == 1


def test_bits_symbols_roundtrip():
    rng = np.random.default_rng(11)
    for mod in (Nrz(), Pam4()):
        bits = rng.integers(0, 2, 10 * mod.bits_per_symbol)
        symbols = mod.bits_to_symbols(bits)
        assert symbols.min() >= 0 and symbols.max() < mod.n_levels
        np.testing.assert_array_equal(mod.symbols_to_bits(symbols), bits)


def test_pam4_gray_mapping_explicit():
    pam4 = Pam4()
    # MSB-first bit pairs → Gray-decoded level indices.
    bits = np.array([0, 0, 0, 1, 1, 1, 1, 0])
    np.testing.assert_array_equal(pam4.bits_to_symbols(bits), [0, 1, 2, 3])


def test_bits_to_symbols_validation():
    pam4 = Pam4()
    with pytest.raises(ValueError, match="empty"):
        pam4.bits_to_symbols(np.array([]))
    with pytest.raises(ValueError, match="only 0 and 1"):
        pam4.bits_to_symbols(np.array([0, 2]))
    with pytest.raises(ValueError, match="not a multiple"):
        pam4.bits_to_symbols(np.array([0, 1, 0]))
    with pytest.raises(ValueError):
        pam4.symbols_to_bits(np.array([0, 4]))


# ---------------------------------------------------------------------------
# Slicing.
# ---------------------------------------------------------------------------

def test_slice_symbols_nearest_level():
    pam4 = Pam4()
    values = np.array([-0.49, -0.2, 0.05, 0.44])
    np.testing.assert_array_equal(pam4.slice_symbols(values), [0, 1, 2, 3])
    # Scaled swing moves the thresholds with it.
    np.testing.assert_array_equal(
        pam4.slice_symbols(values * 0.25, swing=0.25), [0, 1, 2, 3])


def test_nrz_slice_matches_sign_slicer():
    nrz = Nrz()
    values = np.array([-1.0, -1e-12, 0.0, 1e-12, 1.0])
    expected = (values > 0).astype(int)
    np.testing.assert_array_equal(nrz.slice_symbols(values), expected)


def test_slice_roundtrips_ideal_levels():
    for mod in (Nrz(), Pam4()):
        symbols = np.arange(mod.n_levels)
        values = np.asarray(mod.levels)[symbols] * 0.8
        np.testing.assert_array_equal(
            mod.slice_symbols(values, swing=0.8), symbols)


# ---------------------------------------------------------------------------
# SymbolEncoder.
# ---------------------------------------------------------------------------

def test_symbol_encoder_nrz_matches_nrz_encoder():
    bits = np.random.default_rng(5).integers(0, 2, 64)
    jitter = RandomJitter(2e-12, seed=9)
    offsets = jitter.offsets(len(bits), 10e9)
    for rise in (None, 0.0, 30e-12):
        old = NrzEncoder(bit_rate=10e9, samples_per_bit=16, amplitude=0.4,
                         rise_time=rise)
        new = SymbolEncoder(symbol_rate=10e9, samples_per_symbol=16,
                            amplitude=0.4, rise_time=rise)
        for offs in (None, offsets):
            a = old.encode(bits, edge_offsets=offs)
            b = new.encode(bits.astype(np.intp), edge_offsets=offs)
            np.testing.assert_array_equal(a.data, b.data)
            assert a.sample_rate == b.sample_rate


def test_symbol_encoder_pam4_levels():
    enc = SymbolEncoder(symbol_rate=5e9, modulation=Pam4(), amplitude=0.4,
                        rise_time=0.0, samples_per_symbol=8)
    w = enc.encode(np.array([0, 1, 2, 3]))
    np.testing.assert_allclose(
        np.unique(w.data), [-0.2, -0.2 / 3, 0.2 / 3, 0.2])
    assert len(w) == 32


def test_symbol_encoder_bit_rate_is_symbol_rate_times_bits():
    enc = SymbolEncoder(symbol_rate=5e9, modulation=Pam4())
    assert enc.bit_rate == pytest.approx(10e9)
    assert enc.unit_interval == pytest.approx(1 / 5e9)


def test_encode_bits_gray_maps():
    enc = SymbolEncoder(symbol_rate=5e9, modulation=Pam4(), rise_time=0.0,
                        samples_per_symbol=4, amplitude=1.0)
    w = enc.encode_bits(np.array([0, 0, 0, 1, 1, 1, 1, 0]))
    # symbols 0..3 → levels -0.5, -1/6, 1/6, 0.5
    np.testing.assert_allclose(w.data[::4], [-0.5, -1 / 6, 1 / 6, 0.5])


def test_symbol_encoder_validation():
    with pytest.raises(ValueError):
        SymbolEncoder(symbol_rate=0.0)
    with pytest.raises(ValueError):
        SymbolEncoder(symbol_rate=1e9, samples_per_symbol=1)
    with pytest.raises(ValueError):
        SymbolEncoder(symbol_rate=1e9, amplitude=0.0)
    enc = SymbolEncoder(symbol_rate=1e9, modulation=Pam4())
    with pytest.raises(ValueError, match="empty"):
        enc.encode(np.array([], dtype=int))
    with pytest.raises(ValueError):
        enc.encode(np.array([0, 4]))
    with pytest.raises(ValueError, match="edge_offsets"):
        enc.encode(np.array([0, 1]), edge_offsets=np.zeros(3))


def test_bits_to_pam4_convenience():
    bits = np.random.default_rng(2).integers(0, 2, 40)
    w = bits_to_pam4(bits, symbol_rate=5e9, amplitude=0.3,
                     samples_per_symbol=8)
    assert len(w) == 20 * 8
    assert w.sample_rate == pytest.approx(40e9)
    assert np.abs(w.data).max() <= 0.15 + 1e-12


def test_nrz_encoder_exposes_modulation():
    assert NrzEncoder(bit_rate=10e9).modulation == Nrz()
    w_old = bits_to_nrz(np.array([0, 1, 1, 0]), 10e9, amplitude=0.2)
    enc = SymbolEncoder(symbol_rate=10e9, amplitude=0.2)
    w_new = enc.encode_bits(np.array([0, 1, 1, 0]))
    np.testing.assert_array_equal(w_old.data, w_new.data)


# ---------------------------------------------------------------------------
# Symbol-error → bit-error accounting.
# ---------------------------------------------------------------------------

def test_ser_to_ber_gray_scaling():
    assert ser_to_ber(1e-6) == pytest.approx(1e-6)
    assert ser_to_ber(1e-6, Pam4()) == pytest.approx(5e-7)
    with pytest.raises(ValueError):
        ser_to_ber(-1e-6)


def test_ber_from_q_factors_nrz_matches_q_to_ber():
    assert ber_from_q_factors((6.0,)) == pytest.approx(q_to_ber(6.0))


def test_ber_from_q_factors_pam4():
    q = 6.0
    per_eye = q_to_ber(q)
    # Three identical eyes: SER = (2/4) * 3 * per_eye, BER = SER / 2.
    expected = (2.0 / 4.0) * 3.0 * per_eye / 2.0
    assert ber_from_q_factors((q, q, q), Pam4()) == pytest.approx(expected)
    with pytest.raises(ValueError, match="expected 3 Q-factors"):
        ber_from_q_factors((q,), Pam4())


def test_ber_from_measurement_uses_per_eye_qs():
    m = EyeMeasurement(
        eye_height=0.1, eye_width_ui=0.9, eye_amplitude=0.3,
        level_one=0.15, level_zero=-0.15, jitter_rms=1e-12,
        jitter_pp=5e-12, q_factor=5.0, sampling_phase_ui=0.5, n_ui=100,
        n_levels=4, q_factors=(5.0, 7.0, 6.0))
    assert ber_from_measurement(m, Pam4()) == pytest.approx(
        ber_from_q_factors((5.0, 7.0, 6.0), Pam4()))


def test_modulation_survives_dataclasses_replace():
    pam4 = Pam4()
    again = dataclasses.replace(pam4)
    assert again == pam4 and again.thresholds == pam4.thresholds
