"""Property-based tests (hypothesis) on core data structures and
invariants: LTI algebra, waveform operations, PRBS structure, eye
measurement bounds, device monotonicities.
"""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis import q_to_ber
from repro.core import node_impedance, ResistiveLoad
from repro.core.cml_buffer import apply_active_feedback
from repro.devices import nmos
from repro.lti import (
    RationalTF,
    bilinear_transform,
    first_order_lowpass,
    pole_zero_tf,
    second_order_lowpass,
    simulate_tf,
)
from repro.signals import PrbsGenerator, Waveform, bits_to_nrz


# -- strategies ---------------------------------------------------------------

pole_freqs = st.floats(min_value=1e8, max_value=5e10)
gains = st.floats(min_value=0.01, max_value=1e4)
q_values = st.floats(min_value=0.2, max_value=5.0)


@st.composite
def stable_tfs(draw):
    """Random stable low-order transfer functions."""
    kind = draw(st.integers(min_value=0, max_value=2))
    gain = draw(gains)
    if kind == 0:
        return RationalTF.constant(gain)
    if kind == 1:
        return first_order_lowpass(draw(pole_freqs), gain=gain)
    return second_order_lowpass(draw(pole_freqs), draw(q_values), gain=gain)


# -- LTI algebra ----------------------------------------------------------------

@given(stable_tfs(), stable_tfs())
@settings(max_examples=40, deadline=None)
def test_cascade_dc_gain_multiplies(a, b):
    assert a.cascade(b).dc_gain() == pytest.approx(
        a.dc_gain() * b.dc_gain(), rel=1e-6
    )


@given(stable_tfs(), stable_tfs())
@settings(max_examples=40, deadline=None)
def test_cascade_is_commutative_in_response(a, b):
    freqs = np.array([1e8, 1e9, 1e10])
    left = a.cascade(b).response(freqs)
    right = b.cascade(a).response(freqs)
    np.testing.assert_allclose(left, right, rtol=1e-6)


@given(stable_tfs(), stable_tfs())
@settings(max_examples=40, deadline=None)
def test_parallel_dc_gain_adds(a, b):
    assert a.parallel(b).dc_gain() == pytest.approx(
        a.dc_gain() + b.dc_gain(), rel=1e-6, abs=1e-12
    )


@given(stable_tfs())
@settings(max_examples=40, deadline=None)
def test_stable_tfs_report_stable(tf):
    assert tf.is_stable()


@given(stable_tfs())
@settings(max_examples=30, deadline=None)
def test_bandwidth_at_most_where_gain_drops(tf):
    bw = tf.bandwidth_3db()
    if math.isinf(bw):
        return
    target = abs(tf.dc_gain()) / math.sqrt(2.0)
    just_above = abs(tf.response(np.array([bw * 1.05]))[0])
    # Slight peaking can raise the response locally, but well past the
    # measured -3 dB point the response must have fallen below target.
    far_above = abs(tf.response(np.array([bw * 4.0]))[0])
    assert just_above < target * 1.25
    assert far_above < target * 1.05


@given(stable_tfs(), st.floats(min_value=0.1, max_value=10.0))
@settings(max_examples=40, deadline=None)
def test_feedback_reduces_dc_gain_by_loop_factor(tf, loop):
    closed = apply_active_feedback(tf, loop, restore_gain=False)
    assert closed.dc_gain() == pytest.approx(
        tf.dc_gain() / (1 + loop), rel=1e-6
    )


@given(stable_tfs())
@settings(max_examples=30, deadline=None)
def test_bilinear_preserves_dc_gain(tf):
    b, a = bilinear_transform(tf, 320e9)
    assert np.sum(b) / np.sum(a) == pytest.approx(tf.dc_gain(), rel=1e-6)


@given(stable_tfs(), st.floats(min_value=-2.0, max_value=2.0))
@settings(max_examples=30, deadline=None)
def test_constant_input_settles_to_dc_gain(tf, level):
    out = simulate_tf(tf, np.full(256, level), 320e9)
    assert out[-1] == pytest.approx(tf.dc_gain() * level,
                                    rel=1e-3, abs=1e-9)


@given(st.floats(min_value=1e8, max_value=2e10),
       st.floats(min_value=1e8, max_value=2e10), gains)
@settings(max_examples=40, deadline=None)
def test_pole_zero_tf_dc_gain_invariant(fp, fz, gain):
    tf = pole_zero_tf([fp], [fz], gain=gain)
    assert tf.dc_gain() == pytest.approx(gain, rel=1e-9)


# -- waveform ------------------------------------------------------------------

finite_arrays = st.lists(
    st.floats(min_value=-10.0, max_value=10.0,
              allow_nan=False, allow_infinity=False),
    min_size=2, max_size=64,
).map(lambda values: np.array(values))


@given(finite_arrays, st.floats(min_value=0.1, max_value=10.0))
@settings(max_examples=50, deadline=None)
def test_waveform_scaling_scales_statistics(data, scale):
    wave = Waveform(data, 1e9)
    scaled = wave * scale
    assert scaled.peak_to_peak() == pytest.approx(
        wave.peak_to_peak() * scale, rel=1e-9, abs=1e-12
    )
    assert scaled.rms() == pytest.approx(wave.rms() * scale,
                                         rel=1e-9, abs=1e-12)


@given(finite_arrays)
@settings(max_examples=50, deadline=None)
def test_waveform_add_then_subtract_roundtrip(data):
    wave = Waveform(data, 1e9)
    other = Waveform(data[::-1].copy(), 1e9)
    roundtrip = (wave + other) - other
    np.testing.assert_allclose(roundtrip.data, wave.data, atol=1e-12)


@given(finite_arrays, st.integers(min_value=0, max_value=32))
@settings(max_examples=50, deadline=None)
def test_integer_delay_preserves_values(data, n):
    wave = Waveform(data, 1e9)
    delayed = wave.delayed(n / 1e9)
    if n == 0:
        np.testing.assert_allclose(delayed.data, wave.data)
    elif n < len(data):
        np.testing.assert_allclose(delayed.data[n:], wave.data[:-n],
                                   atol=1e-12)
        np.testing.assert_allclose(delayed.data[:n], wave.data[0],
                                   atol=1e-12)


@given(finite_arrays)
@settings(max_examples=30, deadline=None)
def test_delay_never_exceeds_input_range(data):
    wave = Waveform(data, 1e9)
    delayed = wave.delayed(2.5 / 1e9)
    assert delayed.data.max() <= data.max() + 1e-12
    assert delayed.data.min() >= data.min() - 1e-12


# -- PRBS ----------------------------------------------------------------------

@given(st.sampled_from([7, 9, 11, 15]),
       st.integers(min_value=1, max_value=1000))
@settings(max_examples=30, deadline=None)
def test_prbs_period_and_balance(order, seed):
    # The generator's contract: the seed must be nonzero modulo
    # 2**order (an all-zero register never leaves the zero state).
    assume(seed & ((1 << order) - 1) != 0)
    gen = PrbsGenerator(order=order, seed=seed)
    period = gen.period
    seq = gen.bits(period)
    again = gen.bits(period)
    np.testing.assert_array_equal(seq, again)
    assert int(seq.sum()) == 2 ** (order - 1)


@given(st.integers(min_value=1, max_value=126))
@settings(max_examples=30, deadline=None)
def test_prbs_no_short_cycles(shift):
    gen = PrbsGenerator(order=7)
    seq = gen.full_period()
    assert not np.array_equal(seq, np.roll(seq, shift))


# -- eye / ber -----------------------------------------------------------------

@given(st.floats(min_value=0.0, max_value=20.0))
@settings(max_examples=50, deadline=None)
def test_ber_is_probability(q):
    ber = q_to_ber(q)
    assert 0.0 <= ber <= 0.5


@given(st.floats(min_value=0.05, max_value=1.5),
       st.integers(min_value=1, max_value=100))
@settings(max_examples=20, deadline=None)
def test_eye_amplitude_tracks_nrz_amplitude(amplitude, seed):
    from repro.analysis import EyeDiagram
    from repro.signals import prbs7

    wave = bits_to_nrz(prbs7(120, seed=seed), 10e9, amplitude=amplitude,
                       samples_per_bit=16)
    m = EyeDiagram.measure_waveform(wave, 10e9)
    assert m.eye_amplitude == pytest.approx(amplitude, rel=0.05)


# -- devices --------------------------------------------------------------------

@given(st.floats(min_value=5e-6, max_value=200e-6),
       st.floats(min_value=0.2e-3, max_value=8e-3))
@settings(max_examples=50, deadline=None)
def test_mosfet_quantities_positive_and_ft_consistent(width, current):
    device = nmos(width, 0.18e-6, current)
    assert device.gm > 0
    assert device.cgs > 0
    assert device.ft == pytest.approx(
        device.gm / (2 * math.pi * (device.cgs + device.cgd)), rel=1e-9
    )


@given(st.floats(min_value=5e-6, max_value=100e-6),
       st.floats(min_value=0.2e-3, max_value=4e-3),
       st.floats(min_value=1.1, max_value=4.0))
@settings(max_examples=50, deadline=None)
def test_mosfet_gm_monotone_in_current(width, current, factor):
    base = nmos(width, 0.18e-6, current)
    more = nmos(width, 0.18e-6, current * factor)
    assert more.gm > base.gm


@given(st.floats(min_value=50.0, max_value=2000.0),
       st.floats(min_value=1e-15, max_value=500e-15))
@settings(max_examples=50, deadline=None)
def test_node_impedance_bandwidth_decreases_with_cap(resistance, cap):
    # Keep both poles inside the bandwidth-search range (< 100 GHz).
    assume(1.0 / (2 * math.pi * resistance * cap / 2.0) < 8e10)
    load = ResistiveLoad(resistance)
    wide = node_impedance(load, cap / 2.0)
    narrow = node_impedance(load, cap)
    assert narrow.bandwidth_3db() < wide.bandwidth_3db() * 1.01
