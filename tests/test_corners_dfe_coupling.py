"""Process corners, DFE baseline, AC coupling, spectrum estimation."""

import math

import numpy as np
import pytest

from repro.analysis import (
    band_power,
    power_spectral_density,
    spectral_centroid,
)
from repro.baselines import (
    DecisionFeedbackEqualizer,
    dfe_taps_from_channel,
    inner_eye_height_from_corrected,
)
from repro.channel import BackplaneChannel
from repro.devices import (
    ProcessCorner,
    all_corners,
    corner_technology,
    nmos,
)
from repro.link import stage
from repro.lti import AcCoupling, worst_case_wander_fraction
from repro.signals import Waveform, WaveformBatch, add_awgn, bits_to_nrz, \
    prbs7

BIT_RATE = 10e9


# -- corners ----------------------------------------------------------------

def test_corner_mobility_and_threshold_shifts():
    slow = corner_technology(ProcessCorner.SLOW)
    fast = corner_technology(ProcessCorner.FAST)
    typical = corner_technology(ProcessCorner.TYPICAL)
    assert slow.u_n_cox < typical.u_n_cox < fast.u_n_cox
    assert slow.vth_n > typical.vth_n > fast.vth_n


def test_corner_devices_order_gm():
    gms = {}
    for corner, tech in all_corners().items():
        gms[corner] = nmos(20e-6, 0.18e-6, 1e-3, tech=tech).gm
    assert gms[ProcessCorner.SLOW] < gms[ProcessCorner.TYPICAL] \
        < gms[ProcessCorner.FAST]


def test_corner_interface_stays_functional():
    # Rebuild the input-buffer stage on each corner: bandwidth moves
    # but the stage stays usable (the BMVR absorbs the bias side).
    from repro.core import CmlBuffer, ActiveInductorLoad
    from repro.devices import ActiveInductor, pmos

    bandwidths = {}
    for corner, tech in all_corners().items():
        buf = CmlBuffer(
            input_pair=nmos(20e-6, 0.18e-6, 1e-3, tech=tech),
            load=ActiveInductorLoad(ActiveInductor(
                pmos(40e-6, 0.18e-6, 1e-3, tech=tech), 1200.0)),
            tail_current=2e-3, c_load_ext=54e-15,
            source_resistance=250.0, feedback_loop_gain=1.2,
        )
        bandwidths[corner] = buf.bandwidth_3db()
    assert bandwidths[ProcessCorner.SLOW] \
        < bandwidths[ProcessCorner.FAST]
    assert bandwidths[ProcessCorner.SLOW] > 0.6 * bandwidths[
        ProcessCorner.TYPICAL]


def test_typical_corner_is_base():
    base = corner_technology(ProcessCorner.TYPICAL)
    from repro.devices import TSMC180

    assert base.u_n_cox == TSMC180.u_n_cox
    assert base.vth_n == TSMC180.vth_n


# -- DFE -----------------------------------------------------------------

def test_dfe_taps_match_postcursors():
    channel = BackplaneChannel(0.5)
    taps = dfe_taps_from_channel(channel, BIT_RATE, n_taps=2,
                                 amplitude=1.0)
    from repro.analysis import pulse_response

    pulse = pulse_response(channel, BIT_RATE, samples_per_bit=16,
                           amplitude=1.0)
    np.testing.assert_allclose(taps, pulse.postcursors()[:2] / 2.0)
    assert taps[0] > 0  # lossy channel: positive first post-cursor


def test_dfe_opens_inner_eye():
    channel = BackplaneChannel(0.6)
    wave = bits_to_nrz(prbs7(300), BIT_RATE, amplitude=1.0,
                       samples_per_bit=16)
    received = channel.process(wave)
    taps = dfe_taps_from_channel(channel, BIT_RATE, n_taps=3,
                                 amplitude=1.0)
    dfe = DecisionFeedbackEqualizer(taps=taps, bit_rate=BIT_RATE,
                                    decision_amplitude=1.0)
    no_dfe = DecisionFeedbackEqualizer(taps=[0.0], bit_rate=BIT_RATE,
                                       decision_amplitude=1.0)
    assert dfe.inner_eye_height(received) \
        > no_dfe.inner_eye_height(received) + 0.05


def test_dfe_decisions_correct_on_lossy_channel():
    channel = BackplaneChannel(0.5)
    bits = prbs7(300)
    wave = bits_to_nrz(bits, BIT_RATE, amplitude=1.0, samples_per_bit=16)
    received = channel.process(wave)
    taps = dfe_taps_from_channel(channel, BIT_RATE, n_taps=2,
                                 amplitude=1.0)
    dfe = DecisionFeedbackEqualizer(taps=taps, bit_rate=BIT_RATE)
    decisions, _ = dfe.equalize(received)
    errors = min(int(np.sum(decisions[lag:lag + 250] != bits[:250]))
                 for lag in range(3))
    assert errors == 0


def test_dfe_validation():
    with pytest.raises(ValueError):
        DecisionFeedbackEqualizer(taps=[], bit_rate=BIT_RATE)
    with pytest.raises(ValueError):
        DecisionFeedbackEqualizer(taps=[0.1], bit_rate=0.0)
    with pytest.raises(ValueError):
        DecisionFeedbackEqualizer(taps=[0.1], bit_rate=BIT_RATE,
                                  sample_phase_ui=1.5)
    with pytest.raises(ValueError):
        dfe_taps_from_channel(BackplaneChannel(0.5), BIT_RATE, n_taps=0)
    short = bits_to_nrz(prbs7(5), BIT_RATE, samples_per_bit=16)
    with pytest.raises(ValueError):
        DecisionFeedbackEqualizer(taps=[0.1] * 4,
                                  bit_rate=BIT_RATE).equalize(short)


def test_dfe_exact_length_waveform_keeps_last_bit():
    """Regression: ``int((len - 1) / ui_samples)`` silently dropped the
    final UI when the waveform ends exactly on a bit boundary."""
    n_bits = 40
    wave = bits_to_nrz(prbs7(n_bits), BIT_RATE, samples_per_bit=16)
    assert len(wave) == n_bits * 16  # ends exactly on a bit boundary
    dfe = DecisionFeedbackEqualizer(taps=[0.05], bit_rate=BIT_RATE)
    decisions, corrected = dfe.equalize(wave)
    assert len(decisions) == n_bits
    assert len(corrected) == n_bits
    # One trailing sample puts the next UI's sampling instant past the
    # grid: still n_bits decisions, no extrapolated extra bit.
    longer = Waveform(np.concatenate([wave.data, wave.data[-1:]]),
                      wave.sample_rate)
    decisions, _ = dfe.equalize(longer)
    assert len(decisions) == n_bits


def test_dfe_last_sample_interpolation_is_clamped():
    # The final decision instant landing EXACTLY on the last sample is
    # decidable: the interpolation must clamp to the end of the grid,
    # not read past it.
    full = bits_to_nrz(prbs7(24), BIT_RATE, samples_per_bit=16)
    wave = Waveform(full.data[:23 * 16 + 9], full.sample_rate)
    dfe = DecisionFeedbackEqualizer(taps=[0.02], bit_rate=BIT_RATE)
    decisions, corrected = dfe.equalize(wave)
    # Instant of bit 23 is (23 + 0.5) * 16 = 376 = len(wave) - 1.
    assert len(decisions) == 24
    assert np.all(np.isfinite(corrected))
    # A phase pushing that instant past the grid drops back to 23 bits.
    late = DecisionFeedbackEqualizer(taps=[0.02], bit_rate=BIT_RATE,
                                     sample_phase_ui=0.6)
    assert len(late.equalize(wave)[0]) == 23


def test_dfe_equalize_batch_rows_match_serial_on_channel():
    channel = BackplaneChannel(0.5)
    received = channel.process(
        bits_to_nrz(prbs7(120), BIT_RATE, amplitude=1.0,
                    samples_per_bit=16))
    batch = WaveformBatch.stack([add_awgn(received, 0.02, seed=s)
                                 for s in range(1, 7)])
    for n_taps in (1, 2, 3):
        taps = dfe_taps_from_channel(channel, BIT_RATE, n_taps=n_taps,
                                     amplitude=1.0)
        dfe = DecisionFeedbackEqualizer(taps=taps, bit_rate=BIT_RATE)
        decisions, corrected = stage(dfe).equalize(batch)
        assert decisions.shape == corrected.shape \
            == (batch.n_scenarios, 120)
        for i, row in enumerate(batch.rows()):
            ref_decisions, ref_corrected = dfe.equalize(row)
            np.testing.assert_array_equal(decisions[i], ref_decisions)
            np.testing.assert_array_equal(corrected[i], ref_corrected)


def test_dfe_inner_eye_height_batch_matches_serial():
    channel = BackplaneChannel(0.6)
    received = channel.process(
        bits_to_nrz(prbs7(150), BIT_RATE, amplitude=1.0,
                    samples_per_bit=16))
    taps = dfe_taps_from_channel(channel, BIT_RATE, n_taps=3,
                                 amplitude=1.0)
    dfe = DecisionFeedbackEqualizer(taps=taps, bit_rate=BIT_RATE)
    batch = WaveformBatch.stack([add_awgn(received, 0.01, seed=s)
                                 for s in range(1, 5)])
    heights = stage(dfe).inner_eye_height(batch)
    for i, row in enumerate(batch.rows()):
        assert heights[i] == dfe.inner_eye_height(row)


def test_inner_eye_height_from_corrected_degenerate_rows():
    corrected = np.vstack([np.linspace(-1, 1, 40),    # both polarities
                           np.full(40, 0.5),          # ones only
                           np.full(40, -0.5)])        # zeros only
    heights = inner_eye_height_from_corrected(corrected, skip_bits=4)
    assert np.isfinite(heights[0])
    assert heights[1] == -float("inf")
    assert heights[2] == -float("inf")
    assert inner_eye_height_from_corrected(corrected[0], skip_bits=4) \
        == heights[0]


# -- AC coupling ----------------------------------------------------------

def test_coupling_corner():
    coupling = AcCoupling(capacitance=100e-9, termination=50.0)
    assert coupling.highpass_corner_hz == pytest.approx(
        1.0 / (2 * math.pi * 50.0 * 100e-9)
    )
    assert coupling.highpass_corner_hz < 100e3


def test_coupling_blocks_dc_passes_data():
    coupling = AcCoupling(capacitance=1e-12, termination=50.0)
    # Deliberately tiny cap -> corner at 3.2 GHz: visible droop.  The
    # run of ones starts mid-waveform so the capacitor is settled to
    # the zero level first.
    bits = np.concatenate([np.zeros(5, dtype=int),
                           np.ones(20, dtype=int),
                           np.zeros(15, dtype=int)])
    wave = bits_to_nrz(bits, BIT_RATE, amplitude=0.4, samples_per_bit=16)
    out = coupling.process(wave)
    run_start = out.data[16 * 6]      # shortly after the rising edge
    run_end = out.data[16 * 24]       # end of the ones run
    assert abs(run_end) < abs(run_start) * 0.5


def test_big_cap_is_transparent_to_short_patterns():
    coupling = AcCoupling(capacitance=100e-9)
    wave = bits_to_nrz(prbs7(100), BIT_RATE, amplitude=0.4,
                       samples_per_bit=16)
    out = coupling.process(wave)
    np.testing.assert_allclose(out.data, wave.data - wave.data[0],
                               atol=1e-3)


def test_wander_budget_8b10b_vs_uncoded():
    coupling = AcCoupling(capacitance=10e-9)
    coded = worst_case_wander_fraction(coupling, BIT_RATE, max_run_bits=5)
    uncoded = worst_case_wander_fraction(coupling, BIT_RATE,
                                         max_run_bits=31)
    pathological = worst_case_wander_fraction(coupling, BIT_RATE,
                                              max_run_bits=100000)
    assert coded < uncoded < pathological
    assert coded < 2e-3            # 8b/10b keeps wander sub-mUI-scale
    assert uncoded > 5 * coded     # ~ the 31/5 run-length ratio


def test_coupling_validation():
    with pytest.raises(ValueError):
        AcCoupling(capacitance=0.0)
    with pytest.raises(ValueError):
        AcCoupling(termination=-50.0)
    with pytest.raises(ValueError):
        AcCoupling().droop_over(-1.0)
    with pytest.raises(ValueError):
        worst_case_wander_fraction(AcCoupling(), 0.0, 5)


# -- spectrum -----------------------------------------------------------

def test_nrz_spectrum_has_null_at_bit_rate():
    wave = bits_to_nrz(prbs7(2000), BIT_RATE, amplitude=1.0,
                       samples_per_bit=8, rise_time=0.0)
    freq, psd = power_spectral_density(wave, segment_length=2048)
    # Compare PSD near 5 GHz (in-band) vs near the 10 GHz null.
    in_band = psd[np.argmin(np.abs(freq - 5e9))]
    at_null = psd[np.argmin(np.abs(freq - 10e9))]
    assert at_null < 0.05 * in_band


def test_sine_band_power():
    fs = 64e9
    f0 = 4e9
    t = np.arange(8192) / fs
    wave = Waveform(np.sin(2 * np.pi * f0 * t), fs)
    inside = band_power(wave, 3e9, 5e9, segment_length=2048)
    outside = band_power(wave, 10e9, 20e9, segment_length=2048)
    assert inside > 100 * outside
    # A unit sine has power 0.5 V^2.
    assert inside == pytest.approx(0.5, rel=0.15)


def test_preemphasis_raises_spectral_centroid():
    from repro.baselines import FirPreEmphasis

    wave = bits_to_nrz(prbs7(2000), BIT_RATE, amplitude=0.5,
                       samples_per_bit=8)
    fir = FirPreEmphasis(taps=(1.4, -0.4), bit_rate=BIT_RATE)
    plain_centroid = spectral_centroid(wave, segment_length=1024)
    shaped_centroid = spectral_centroid(fir.process(wave),
                                        segment_length=1024)
    assert shaped_centroid > 1.1 * plain_centroid


def test_spectrum_validation():
    wave = bits_to_nrz(prbs7(100), BIT_RATE, samples_per_bit=8)
    with pytest.raises(ValueError):
        power_spectral_density(wave, segment_length=8)
    with pytest.raises(ValueError):
        power_spectral_density(wave, segment_length=1024, overlap=1.0)
    with pytest.raises(ValueError):
        band_power(wave, 5e9, 1e9)
    tiny = Waveform(np.zeros(64), 1e9)
    with pytest.raises(ValueError):
        power_spectral_density(tiny, segment_length=128)


def test_inner_eye_height_all_bits_skipped_reports_no_eye():
    # skip_bits >= n_bits: nothing left to measure -> -inf, not a crash.
    wave = bits_to_nrz(prbs7(10), BIT_RATE, samples_per_bit=16)
    dfe = DecisionFeedbackEqualizer(taps=[0.05], bit_rate=BIT_RATE)
    assert dfe.inner_eye_height(wave, skip_bits=16) == -float("inf")
    batch = WaveformBatch.stack([wave, wave])
    np.testing.assert_array_equal(
        stage(dfe).inner_eye_height(batch, skip_bits=16),
        [-float("inf")] * 2)
