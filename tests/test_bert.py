"""Self-synchronizing PRBS checker (BERT)."""

import numpy as np
import pytest

from repro.analysis import check_prbs
from repro.cdr import BangBangCdr, CdrConfig
from repro.signals import bits_to_nrz, prbs7, prbs15, prbs_sequence


def test_clean_prbs7_is_error_free():
    result = check_prbs(prbs7(500))
    assert result.error_free
    assert result.ber == 0.0


def test_any_starting_phase_synchronizes():
    sequence = prbs7(400)
    for offset in (0, 13, 57, 126):
        result = check_prbs(sequence[offset: offset + 200])
        assert result.error_free, f"failed at offset {offset}"


def test_higher_orders():
    assert check_prbs(prbs15(1000), order=15).error_free
    assert check_prbs(prbs_sequence(9, 600), order=9).error_free


def test_single_error_counts_three_mismatches():
    bits = prbs7(500)
    bits[250] ^= 1
    result = check_prbs(bits)
    assert result.raw_mismatches == 3
    assert result.estimated_true_errors == pytest.approx(1.0)


def test_multiple_isolated_errors():
    bits = prbs7(1000)
    positions = [100, 300, 500, 700]
    for position in positions:
        bits[position] ^= 1
    result = check_prbs(bits)
    assert result.estimated_true_errors == pytest.approx(len(positions))
    assert result.ber == pytest.approx(len(positions) / result.bits_checked)


def test_random_data_fails_massively():
    rng = np.random.default_rng(3)
    random_bits = rng.integers(0, 2, 600).astype(np.int8)
    result = check_prbs(random_bits)
    # Random bits mismatch the recurrence half the time.
    assert result.raw_mismatches > 0.3 * result.bits_checked


def test_ber_upper_bound():
    clean = check_prbs(prbs7(1000))
    bound = clean.ber_upper_bound(0.95)
    assert bound == pytest.approx(3.0 / clean.bits_checked, rel=0.01)
    dirty_bits = prbs7(1000)
    dirty_bits[500] ^= 1
    dirty = check_prbs(dirty_bits)
    assert dirty.ber_upper_bound(0.95) > dirty.ber
    with pytest.raises(ValueError):
        clean.ber_upper_bound(1.5)


def test_validation():
    with pytest.raises(ValueError):
        check_prbs(prbs7(100), order=8)
    with pytest.raises(ValueError):
        check_prbs(prbs7(10))
    with pytest.raises(ValueError):
        check_prbs(np.array([0, 1, 2] * 10))


def test_bert_through_receiver_and_cdr():
    """End-to-end instrument use: PRBS through the RX chain and CDR,
    checked without any reference alignment."""
    from repro.core import build_input_interface

    rx = build_input_interface()
    wave = bits_to_nrz(prbs7(600), 10e9, amplitude=0.05,
                       samples_per_bit=16)
    out = rx.process(wave)
    recovered = BangBangCdr(CdrConfig(bit_rate=10e9)).recover(out)
    # Drop the pre-lock region, then the checker self-syncs anywhere.
    settled = recovered.decisions[max(0, recovered.locked_at_bit):]
    result = check_prbs(settled)
    assert result.error_free

def test_single_error_at_every_position_estimates_one():
    """Regression: an error in the first/last ``order`` bits feeds
    fewer than 3 mismatches, so the raw/3 estimate under-counted at the
    stream edges.  The clustered estimate is exact everywhere."""
    clean = prbs7(200)
    for position in range(len(clean)):
        bits = clean.copy()
        bits[position] ^= 1
        result = check_prbs(bits)
        assert result.estimated_true_errors == 1.0, (
            f"position {position}: {result.raw_mismatches} mismatches -> "
            f"{result.estimated_true_errors}"
        )


def test_single_error_every_position_higher_order():
    clean = prbs_sequence(9, 120)
    for position in range(len(clean)):
        bits = clean.copy()
        bits[position] ^= 1
        result = check_prbs(bits, order=9)
        assert result.estimated_true_errors == 1.0, position


def test_tail_error_ber_not_underestimated():
    bits = prbs7(500)
    bits[499] ^= 1  # only ONE mismatch reaches the checker
    result = check_prbs(bits)
    assert result.raw_mismatches == 1
    assert result.estimated_true_errors == 1.0
    assert result.ber == pytest.approx(1.0 / result.bits_checked)


def test_raw_count_fallback_without_error_events():
    from repro.analysis import BertResult

    legacy = BertResult(bits_checked=100, raw_mismatches=6)
    assert legacy.estimated_true_errors == pytest.approx(2.0)
