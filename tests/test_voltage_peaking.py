"""Voltage-peaking circuit: delay buffer, differentiator, spike tuning."""

import numpy as np
import pytest

from repro.core import CmlDelayBuffer, Differentiator, VoltagePeakingCircuit
from repro.signals import Waveform, bits_to_nrz, prbs7


def make_peaking(width_ui=0.35, height_current=1.5e-3, amplitude=0.2):
    delay = CmlDelayBuffer(nominal_delay=width_ui / 10e9,
                           tail_current_nominal=1.5e-3,
                           tail_current=1.5e-3)
    differentiator = Differentiator(delay=delay,
                                    tail_current=height_current,
                                    load_resistance=25.0,
                                    logic_amplitude=amplitude)
    return VoltagePeakingCircuit(differentiator=differentiator)


def square_wave(amplitude=0.2):
    return bits_to_nrz(np.tile([1, 1, 1, 0, 0, 0], 12), 10e9,
                       amplitude=amplitude, samples_per_bit=32,
                       rise_time=5e-12)


# -- delay buffer --------------------------------------------------------------

def test_delay_nominal():
    buf = CmlDelayBuffer(nominal_delay=35e-12)
    assert buf.delay == pytest.approx(35e-12)
    assert buf.tuning_fraction() == pytest.approx(0.0)


def test_delay_inverse_in_tail_current():
    buf = CmlDelayBuffer(nominal_delay=35e-12, tail_current_nominal=2e-3,
                         tail_current=2e-3)
    faster = buf.tuned(1.25)
    slower = buf.tuned(0.8)
    assert faster.delay == pytest.approx(35e-12 / 1.25)
    assert slower.delay == pytest.approx(35e-12 / 0.8)


def test_20_percent_tuning_range():
    # The paper: "tunable delay to alter the voltage-peaking tuning
    # range up to 20 %".
    buf = CmlDelayBuffer(nominal_delay=35e-12)
    assert buf.tuned(1.0 / 1.2).tuning_fraction() == pytest.approx(0.2)
    assert buf.tuned(1.25).tuning_fraction() == pytest.approx(-0.2)


def test_delay_processes_waveform():
    buf = CmlDelayBuffer(nominal_delay=1e-10)
    wave = Waveform(np.array([1.0, 2.0, 3.0, 4.0]), 2e10)  # dt = 50 ps
    out = buf.process(wave)
    np.testing.assert_allclose(out.data, [1.0, 1.0, 1.0, 2.0])


def test_delay_validation():
    with pytest.raises(ValueError):
        CmlDelayBuffer(nominal_delay=0.0)
    with pytest.raises(ValueError):
        CmlDelayBuffer(nominal_delay=1e-12).tuned(0.0)


# -- differentiator ---------------------------------------------------------

def test_spikes_only_at_transitions():
    peaking = make_peaking()
    wave = square_wave()
    spikes = peaking.differentiator.process(wave)
    # Middle of a settled run: no spike.
    spb = 32
    settled = spikes.data[int(1.5 * spb): 2 * spb]
    assert np.max(np.abs(settled)) < 0.1 * peaking.differentiator.spike_height
    # Just after a falling edge (bit 3): a negative spike.
    window = spikes.data[3 * spb: int(3.6 * spb)]
    assert window.min() < -0.8 * peaking.differentiator.spike_height


def test_spike_sign_follows_new_bit():
    peaking = make_peaking()
    wave = square_wave()
    spikes = peaking.differentiator.process(wave).data
    spb = 32
    rising = spikes[6 * spb + 4: 7 * spb]  # after the 0->1 at bit 6
    assert rising.max() > 0.5 * peaking.differentiator.spike_height


def test_spike_height_tracks_tail_current():
    tall = make_peaking(height_current=2e-3)
    short = make_peaking(height_current=1e-3)
    assert tall.differentiator.spike_height == pytest.approx(
        2 * short.differentiator.spike_height
    )


def test_spike_width_tracks_delay():
    peaking = make_peaking(width_ui=0.5)
    wave = square_wave()
    spikes = np.abs(peaking.differentiator.process(wave).data)
    threshold = 0.5 * peaking.differentiator.spike_height
    widths = np.diff(np.flatnonzero(np.diff((spikes > threshold)
                                            .astype(int)) != 0))[::2]
    spb = 32
    expected = 0.5 * spb  # 0.5 UI in samples
    assert np.median(widths) == pytest.approx(expected, rel=0.3)


def test_differentiator_validation():
    delay = CmlDelayBuffer(nominal_delay=35e-12)
    with pytest.raises(ValueError):
        Differentiator(delay=delay, tail_current=0.0)
    with pytest.raises(ValueError):
        Differentiator(delay=delay, load_resistance=-25.0)
    with pytest.raises(ValueError):
        Differentiator(delay=delay, logic_amplitude=0.0)


# -- peaking circuit -----------------------------------------------------------

def test_peaking_boosts_edges_above_settled_level():
    peaking = make_peaking()
    wave = square_wave()
    peaked = peaking.process(wave)
    settled = abs(wave.data[int(2.5 * 32)])
    assert peaked.data.max() > settled * 1.1


def test_disabled_peaking_is_passthrough():
    peaking = make_peaking().disabled()
    wave = square_wave()
    out = peaking.process(wave)
    np.testing.assert_array_equal(out.data, wave.data)
    assert peaking.supply_current == 0.0


def test_equivalent_fir_taps():
    peaking = make_peaking()
    main, post = peaking.equivalent_fir_taps(signal_amplitude=0.1)
    k = peaking.differentiator.spike_height / 0.2
    assert main == pytest.approx(1 + k)
    assert post == pytest.approx(-k)
    with pytest.raises(ValueError):
        peaking.equivalent_fir_taps(0.0)


def test_preemphasis_db_positive():
    peaking = make_peaking()
    assert peaking.preemphasis_db(0.1) > 1.0
    with pytest.raises(ValueError):
        peaking.preemphasis_db(-1.0)


def test_peaking_flattens_channel_isi():
    # The Fig 16 mechanism: pre-emphasis counteracts channel loss.
    from repro.channel import BackplaneChannel
    from repro.analysis import EyeDiagram

    channel = BackplaneChannel(0.5)
    wave = bits_to_nrz(prbs7(220), 10e9, amplitude=0.2, samples_per_bit=16)
    plain = channel.process(wave)
    peaked = channel.process(make_peaking().process(wave))
    eye_plain = EyeDiagram.measure_waveform(plain, 10e9, skip_ui=16)
    eye_peaked = EyeDiagram.measure_waveform(peaked, 10e9, skip_ui=16)
    assert eye_peaked.eye_height > eye_plain.eye_height
